package partition

import "testing"

func TestBalancedGridPrefersCubeLikeShapes(t *testing.T) {
	cases := []struct {
		nparts, nx, ny, nz int
		want               [3]int
	}{
		{1, 4, 4, 4, [3]int{1, 1, 1}},
		{8, 4, 4, 4, [3]int{2, 2, 2}},
		{27, 9, 9, 9, [3]int{3, 3, 3}},
		{6, 4, 4, 4, [3]int{3, 2, 1}},   // cube mesh: largest factor on x (stable tie-break)
		{6, 2, 8, 4, [3]int{1, 3, 2}},   // largest factor follows the largest dimension
		{12, 6, 6, 6, [3]int{3, 2, 2}},  // 2·2·3 beats 1·3·4 and 1·2·6
		{7, 8, 8, 8, [3]int{7, 1, 1}},   // primes go flat
		{5, 2, 2, 8, [3]int{1, 1, 5}},   // only one placement fits
		{10, 12, 2, 6, [3]int{5, 1, 2}}, // 1·2·5 with 5 on the largest dim
	}
	for _, c := range cases {
		got, err := BalancedGrid(c.nparts, c.nx, c.ny, c.nz)
		if err != nil {
			t.Fatalf("BalancedGrid(%d, %d,%d,%d): %v", c.nparts, c.nx, c.ny, c.nz, err)
		}
		if got != c.want {
			t.Errorf("BalancedGrid(%d, %d,%d,%d) = %v, want %v", c.nparts, c.nx, c.ny, c.nz, got, c.want)
		}
		if got[0]*got[1]*got[2] != c.nparts {
			t.Errorf("grid %v does not multiply to %d", got, c.nparts)
		}
	}
}

func TestBalancedGridRejectsImpossibleFits(t *testing.T) {
	if _, err := BalancedGrid(64, 2, 2, 2); err == nil {
		t.Fatal("64 parts on a 2x2x2 mesh accepted")
	}
	if _, err := BalancedGrid(0, 4, 4, 4); err == nil {
		t.Fatal("zero parts accepted")
	}
	if _, err := BalancedGrid(4, 4, 0, 4); err == nil {
		t.Fatal("degenerate mesh accepted")
	}
}

// TestBalancedGridGrowPaths covers the shapes the elastic recovery policies
// walk through: a shrink degrades the grid to a survivor count (often
// non-cubic), and a migration grows it back to the original width. The grown
// grid must be exactly the pre-loss grid — BalancedGrid is a pure function of
// the part count and mesh, so grow-after-shrink round-trips bit-for-bit and
// the redistribution stays a pure permutation.
func TestBalancedGridGrowPaths(t *testing.T) {
	cases := []struct {
		name                   string
		full, survivors        int
		nx, ny, nz             int
		wantFull, wantSurvivor [3]int
	}{
		{"cubic 8 down to 6 and back", 8, 6, 6, 6, 6, [3]int{2, 2, 2}, [3]int{3, 2, 1}},
		{"non-cubic 12 down to 9", 12, 9, 12, 6, 3, [3]int{3, 2, 2}, [3]int{3, 3, 1}},
		{"flat mesh 6 down to 4", 6, 4, 12, 2, 6, [3]int{3, 1, 2}, [3]int{2, 1, 2}},
		{"two ranks down to one", 2, 1, 3, 3, 3, [3]int{2, 1, 1}, [3]int{1, 1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			full, err := BalancedGrid(c.full, c.nx, c.ny, c.nz)
			if err != nil {
				t.Fatal(err)
			}
			if full != c.wantFull {
				t.Fatalf("full grid %v, want %v", full, c.wantFull)
			}
			shrunk, err := BalancedGrid(c.survivors, c.nx, c.ny, c.nz)
			if err != nil {
				t.Fatal(err)
			}
			if shrunk != c.wantSurvivor {
				t.Fatalf("survivor grid %v, want %v", shrunk, c.wantSurvivor)
			}
			regrown, err := BalancedGrid(c.full, c.nx, c.ny, c.nz)
			if err != nil {
				t.Fatal(err)
			}
			if regrown != full {
				t.Fatalf("grow-after-shrink grid %v does not round-trip to %v", regrown, full)
			}
		})
	}
}

// TestBalancedGridDegenerateSingleRank pins the 1-rank world the restart
// fallback can bottom out at: every mesh accepts it as {1,1,1}.
func TestBalancedGridDegenerateSingleRank(t *testing.T) {
	for _, mesh := range [][3]int{{1, 1, 1}, {2, 3, 4}, {16, 16, 16}} {
		got, err := BalancedGrid(1, mesh[0], mesh[1], mesh[2])
		if err != nil {
			t.Fatalf("mesh %v: %v", mesh, err)
		}
		if got != [3]int{1, 1, 1} {
			t.Fatalf("mesh %v: 1 rank got grid %v", mesh, got)
		}
	}
}

func TestBalancedGridIsDeterministic(t *testing.T) {
	for n := 1; n <= 64; n++ {
		a, errA := BalancedGrid(n, 16, 16, 16)
		b, errB := BalancedGrid(n, 16, 16, 16)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("nparts %d: %v/%v vs %v/%v", n, a, errA, b, errB)
		}
	}
}
