// Package triage turns the journal determinism contract into a debugger.
// Equal-seed runs leave byte-identical JSONL journals (package obs), so any
// behaviour change between two runs — a code change, a platform model, a
// seed — is exactly the first line where their journals diverge. Diff
// streams two journals to that line and reports it with full context:
// virtual time, the diverging rank's current phase and last completed
// step, and a window of surrounding lines from both sides. FormatSweep
// renders per-point first-divergence summaries across a platform × rank
// grid, the front-end for outlier hunting.
//
// Determinism contract: the package reads no wall clock and no global
// randomness (enforced by heterolint's detclock analyzer); its output is a
// pure function of the two input byte streams.
package triage

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"heterohpc/internal/obs"
)

// Line is one journal line: its 1-based number, raw bytes (without the
// trailing newline) and, when the line parses, the decoded event.
type Line struct {
	Num    int
	Raw    string
	Ev     obs.Event
	Parsed bool
}

// Side describes one journal's state at the divergence point.
type Side struct {
	// Name labels the journal (usually its file name).
	Name string
	// Line is the diverging line, or nil when this journal ended before
	// reaching it (the other side kept going).
	Line *Line
	// Phase is the phase the diverging line's rank was in when it emitted
	// the line ("" when unknown — e.g. global rank −1 events).
	Phase string
	// Step is the last time step that rank had completed (0 = none yet; a
	// checkpoint restore rewinds it to the restored step).
	Step int
	// After holds up to window raw lines following the diverging line.
	After []string
}

// Divergence reports the first line where two journals differ.
type Divergence struct {
	// Num is the 1-based number of the first differing line.
	Num int
	// Common holds up to window identical lines preceding the divergence
	// (shared by both journals by construction).
	Common []Line
	// Old and New are the two journals' states at line Num.
	Old, New Side
}

// Diff streams two journals and returns their first divergence, or nil
// when they are byte-identical. window bounds the surrounding-context
// capture (lines kept before and read after the divergence). The int
// result is the identical-prefix length in lines — the total line count
// when the journals match. Lines on the identical prefix must parse
// (errors wrap obs.ErrMalformed and carry the journal name and line
// number); the diverging lines themselves are reported even when
// unparseable.
func Diff(oldName string, oldR io.Reader, newName string, newR io.Reader, window int) (*Divergence, int, error) {
	if window < 0 {
		window = 0
	}
	ob, nb := bufio.NewReader(oldR), bufio.NewReader(newR)
	octx, nctx := newCtx(), newCtx()
	var common []Line
	num := 0
	for {
		oline, ook, err := readLine(ob)
		if err != nil {
			return nil, num, fmt.Errorf("%s line %d: %w", oldName, num+1, err)
		}
		nline, nok, err := readLine(nb)
		if err != nil {
			return nil, num, fmt.Errorf("%s line %d: %w", newName, num+1, err)
		}
		if !ook && !nok {
			return nil, num, nil
		}
		num++
		if ook && nok && oline == nline {
			ev, perr := obs.ParseEventLine(oline)
			if perr != nil {
				return nil, num - 1, fmt.Errorf("%s line %d: %w", oldName, num, perr)
			}
			octx.update(ev)
			nctx.update(ev)
			if window > 0 {
				if len(common) == window {
					copy(common, common[1:])
					common = common[:window-1]
				}
				common = append(common, Line{Num: num, Raw: oline, Ev: ev, Parsed: true})
			}
			continue
		}
		d := &Divergence{Num: num, Common: common}
		d.Old = makeSide(oldName, num, oline, ook, octx, ob, window)
		d.New = makeSide(newName, num, nline, nok, nctx, nb, window)
		return d, num - 1, nil
	}
}

// readLine returns the next line without its trailing newline. ok is false
// on clean end of input. A final line without a newline is returned as a
// line: a truncated journal still diffs (the divergence finder must work
// on exactly the runs that failed).
func readLine(br *bufio.Reader) (line string, ok bool, err error) {
	s, err := br.ReadString('\n')
	if err == io.EOF {
		if s == "" {
			return "", false, nil
		}
		return s, true, nil
	}
	if err != nil {
		return "", false, err
	}
	return s[:len(s)-1], true, nil
}

// ctx tracks per-rank journal context on one side: the phase each rank is
// in and the last time step it completed.
type ctx struct {
	phase map[int]string
	step  map[int]int
}

func newCtx() *ctx {
	return &ctx{phase: make(map[int]string), step: make(map[int]int)}
}

func (c *ctx) update(ev obs.Event) {
	switch ev.Kind {
	case "phase":
		c.phase[ev.Rank] = ev.Name
	case "step":
		c.step[ev.Rank] = int(ev.I1)
	case "ckpt-restore":
		// Restoring the checkpoint written after step I1 rewinds the rank
		// there: steps beyond it will re-run.
		c.step[ev.Rank] = int(ev.I1)
	}
}

func makeSide(name string, num int, raw string, ok bool, c *ctx, br *bufio.Reader, window int) Side {
	s := Side{Name: name}
	if !ok {
		return s
	}
	ln := &Line{Num: num, Raw: raw}
	if ev, err := obs.ParseEventLine(raw); err == nil {
		ln.Ev = ev
		ln.Parsed = true
		s.Phase = c.phase[ev.Rank]
		s.Step = c.step[ev.Rank]
	}
	s.Line = ln
	for i := 0; i < window; i++ {
		next, ok2, err := readLine(br)
		if err != nil || !ok2 {
			break
		}
		s.After = append(s.After, next)
	}
	return s
}

// FormatDivergence renders a divergence as a plain-text report: the
// shared context window once, then each side's diverging line (with the
// rank's phase/step context) and following lines.
func FormatDivergence(d *Divergence) string {
	var b strings.Builder
	fmt.Fprintf(&b, "first divergence at line %d (%d identical lines)\n", d.Num, d.Num-1)
	if len(d.Common) > 0 {
		b.WriteString("common context:\n")
		for i := range d.Common {
			fmt.Fprintf(&b, "  %6d | %s\n", d.Common[i].Num, d.Common[i].Raw)
		}
	}
	formatSide(&b, &d.Old, d.Num)
	formatSide(&b, &d.New, d.Num)
	return b.String()
}

func formatSide(b *strings.Builder, s *Side, num int) {
	if s.Line == nil {
		fmt.Fprintf(b, "--- %s: journal ends after line %d\n", s.Name, num-1)
		return
	}
	fmt.Fprintf(b, "--- %s: %s\n", s.Name, SideContext(s))
	fmt.Fprintf(b, "  >%5d | %s\n", s.Line.Num, s.Line.Raw)
	for i, after := range s.After {
		fmt.Fprintf(b, "  %6d | %s\n", s.Line.Num+1+i, after)
	}
}

// SideContext renders one side's divergence context as a single line:
// virtual time, rank, kind, phase, and last completed step.
func SideContext(s *Side) string {
	if s.Line == nil {
		return "journal ended"
	}
	if !s.Line.Parsed {
		return "unparseable line"
	}
	ev := s.Line.Ev
	var b strings.Builder
	fmt.Fprintf(&b, "t=%s rank=%d kind=%q", strconv.FormatFloat(ev.T, 'g', -1, 64), ev.Rank, ev.Kind)
	if ev.Name != "" {
		fmt.Fprintf(&b, " name=%q", ev.Name)
	}
	if s.Phase != "" {
		fmt.Fprintf(&b, " phase=%q", s.Phase)
	}
	fmt.Fprintf(&b, " after-step=%d", s.Step)
	return b.String()
}

// SweepPoint is one cell of the outlier-hunting grid.
type SweepPoint struct {
	Platform string
	Ranks    int
}

// SweepResult is one point's diff outcome.
type SweepResult struct {
	Point SweepPoint
	// Lines is the identical-prefix length (total lines when Div is nil).
	Lines int
	// Div is the point's first divergence, nil when the journals matched.
	Div *Divergence
	// Err is set when the point could not be produced or diffed.
	Err error
}

// FormatSweep renders the per-point first-divergence summary as a
// plain-text grid (platforms × rank counts, in first-appearance order)
// followed by one context line per divergent or failed point. Cells read
// "same" (byte-identical), "L<n>" (first divergence at line n), or "ERR".
func FormatSweep(results []SweepResult) string {
	var plats []string
	var ranks []int
	cells := make(map[SweepPoint]string)
	for i := range results {
		r := &results[i]
		p := r.Point
		if _, dup := cells[p]; !dup {
			if !containsStr(plats, p.Platform) {
				plats = append(plats, p.Platform)
			}
			if !containsInt(ranks, p.Ranks) {
				ranks = append(ranks, p.Ranks)
			}
		}
		switch {
		case r.Err != nil:
			cells[p] = "ERR"
		case r.Div != nil:
			cells[p] = "L" + strconv.Itoa(r.Div.Num)
		default:
			cells[p] = "same"
		}
	}

	colW := len("platform")
	for _, p := range plats {
		if len(p) > colW {
			colW = len(p)
		}
	}
	cellW := 4
	for _, c := range cells {
		if len(c) > cellW {
			cellW = len(c)
		}
	}
	for _, r := range ranks {
		if w := len(strconv.Itoa(r)); w > cellW {
			cellW = w
		}
	}

	var b strings.Builder
	b.WriteString("journal-diff sweep: first divergence per platform × ranks\n")
	fmt.Fprintf(&b, "%-*s", colW, "platform")
	for _, r := range ranks {
		fmt.Fprintf(&b, "  %*d", cellW, r)
	}
	b.WriteByte('\n')
	for _, p := range plats {
		fmt.Fprintf(&b, "%-*s", colW, p)
		for _, r := range ranks {
			cell, present := cells[SweepPoint{p, r}]
			if !present {
				cell = "-"
			}
			fmt.Fprintf(&b, "  %*s", cellW, cell)
		}
		b.WriteByte('\n')
	}

	details := false
	for i := range results {
		r := &results[i]
		if r.Err == nil && r.Div == nil {
			continue
		}
		if !details {
			details = true
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s × %d: ", r.Point.Platform, r.Point.Ranks)
		switch {
		case r.Err != nil:
			fmt.Fprintf(&b, "error: %v\n", r.Err)
		default:
			fmt.Fprintf(&b, "line %d: %s\n", r.Div.Num, SideContext(&r.Div.New))
		}
	}
	return b.String()
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
