package triage

import (
	"errors"
	"strings"
	"testing"

	"heterohpc/internal/obs"
)

// j joins journal lines (given without newlines) into JSONL bytes.
func j(lines ...string) string {
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

func TestDiffIdentical(t *testing.T) {
	a := j(
		`{"t":0,"rank":0,"kind":"phase","name":"assemble"}`,
		`{"t":1,"rank":0,"kind":"step","i1":1}`,
	)
	d, lines, err := Diff("a", strings.NewReader(a), "b", strings.NewReader(a), 3)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("identical journals diverged: %+v", d)
	}
	if lines != 2 {
		t.Fatalf("lines = %d, want 2", lines)
	}
}

func TestDiffBothEmpty(t *testing.T) {
	d, lines, err := Diff("a", strings.NewReader(""), "b", strings.NewReader(""), 3)
	if err != nil || d != nil || lines != 0 {
		t.Fatalf("got d=%v lines=%d err=%v", d, lines, err)
	}
}

func TestDiffFirstDivergenceWithContext(t *testing.T) {
	common := []string{
		`{"t":0,"rank":0,"kind":"phase","name":"assemble"}`,
		`{"t":0.5,"rank":3,"kind":"phase","name":"solve"}`,
		`{"t":1,"rank":3,"kind":"step","i1":2}`,
		`{"t":1.5,"rank":0,"kind":"step","i1":2}`,
	}
	old := j(append(append([]string{}, common...),
		`{"t":2,"rank":3,"kind":"solve","name":"cg","i1":10,"f1":1e-09,"b":true}`,
		`{"t":3,"rank":3,"kind":"step","i1":3}`,
	)...)
	new_ := j(append(append([]string{}, common...),
		`{"t":2,"rank":3,"kind":"solve","name":"cg","i1":12,"f1":2e-09,"b":true}`,
		`{"t":3.5,"rank":3,"kind":"step","i1":3}`,
	)...)
	d, lines, err := Diff("old.jsonl", strings.NewReader(old), "new.jsonl", strings.NewReader(new_), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("no divergence found")
	}
	if d.Num != 5 || lines != 4 {
		t.Fatalf("Num=%d lines=%d, want 5/4", d.Num, lines)
	}
	if len(d.Common) != 2 || d.Common[0].Num != 3 || d.Common[1].Num != 4 {
		t.Fatalf("common window = %+v, want lines 3-4", d.Common)
	}
	for _, s := range []*Side{&d.Old, &d.New} {
		if s.Line == nil || !s.Line.Parsed {
			t.Fatalf("%s: diverging line missing/unparsed", s.Name)
		}
		if s.Line.Ev.Rank != 3 || s.Line.Ev.Kind != "solve" {
			t.Fatalf("%s: wrong event %+v", s.Name, s.Line.Ev)
		}
		if s.Phase != "solve" {
			t.Fatalf("%s: phase = %q, want solve", s.Name, s.Phase)
		}
		if s.Step != 2 {
			t.Fatalf("%s: step = %d, want 2", s.Name, s.Step)
		}
		if len(s.After) != 1 {
			t.Fatalf("%s: after = %v", s.Name, s.After)
		}
	}
	if d.Old.Line.Ev.I1 != 10 || d.New.Line.Ev.I1 != 12 {
		t.Fatalf("iteration payloads wrong: %d vs %d", d.Old.Line.Ev.I1, d.New.Line.Ev.I1)
	}

	rep := FormatDivergence(d)
	for _, want := range []string{
		"first divergence at line 5",
		"common context:",
		"old.jsonl", "new.jsonl",
		`phase="solve"`, "after-step=2", `kind="solve"`,
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestDiffOneSideEnds(t *testing.T) {
	old := j(
		`{"t":0,"rank":0,"kind":"step","i1":1}`,
		`{"t":1,"rank":0,"kind":"step","i1":2}`,
	)
	new_ := j(`{"t":0,"rank":0,"kind":"step","i1":1}`)
	d, lines, err := Diff("old", strings.NewReader(old), "new", strings.NewReader(new_), 1)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Num != 2 || lines != 1 {
		t.Fatalf("d=%+v lines=%d", d, lines)
	}
	if d.New.Line != nil {
		t.Fatalf("ended side has a line: %+v", d.New.Line)
	}
	if d.Old.Line == nil || d.Old.Step != 1 {
		t.Fatalf("surviving side context wrong: %+v", d.Old)
	}
	if !strings.Contains(FormatDivergence(d), "journal ends after line 1") {
		t.Errorf("report missing end-of-journal note:\n%s", FormatDivergence(d))
	}
}

func TestDiffCkptRestoreRewindsStep(t *testing.T) {
	old := j(
		`{"t":0,"rank":0,"kind":"step","i1":3}`,
		`{"t":1,"rank":0,"kind":"ckpt-restore","i1":1,"i2":64}`,
		`{"t":2,"rank":0,"kind":"solve","name":"cg","i1":5,"b":true}`,
	)
	new_ := j(
		`{"t":0,"rank":0,"kind":"step","i1":3}`,
		`{"t":1,"rank":0,"kind":"ckpt-restore","i1":1,"i2":64}`,
		`{"t":2,"rank":0,"kind":"solve","name":"cg","i1":6,"b":true}`,
	)
	d, _, err := Diff("old", strings.NewReader(old), "new", strings.NewReader(new_), 0)
	if err != nil || d == nil {
		t.Fatalf("d=%v err=%v", d, err)
	}
	if d.New.Step != 1 {
		t.Fatalf("restore did not rewind step: %d, want 1", d.New.Step)
	}
}

func TestDiffMalformedPrefixIsError(t *testing.T) {
	bad := j("garbage", "more")
	_, _, err := Diff("old", strings.NewReader(bad), "new", strings.NewReader(bad), 0)
	if err == nil || !errors.Is(err, obs.ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error missing location: %v", err)
	}
}

func TestDiffUnparseableDivergingLineStillReported(t *testing.T) {
	old := j(`{"t":0,"rank":0,"kind":"step","i1":1}`, `garbage-old`)
	new_ := j(`{"t":0,"rank":0,"kind":"step","i1":1}`, `garbage-new`)
	d, _, err := Diff("old", strings.NewReader(old), "new", strings.NewReader(new_), 0)
	if err != nil || d == nil {
		t.Fatalf("d=%v err=%v", d, err)
	}
	if d.Old.Line == nil || d.Old.Line.Parsed || d.Old.Line.Raw != "garbage-old" {
		t.Fatalf("unparseable line not carried: %+v", d.Old.Line)
	}
	if SideContext(&d.Old) != "unparseable line" {
		t.Fatalf("context = %q", SideContext(&d.Old))
	}
}

func TestDiffTruncatedFinalLineDiffs(t *testing.T) {
	// A journal whose final line lost its newline (crashed writer) must
	// still diff, not error.
	oldRaw := `{"t":0,"rank":0,"kind":"step","i1":1}` + "\n" + `{"t":1,"rank":0,"kind":"st`
	newRaw := j(`{"t":0,"rank":0,"kind":"step","i1":1}`, `{"t":1,"rank":0,"kind":"step","i1":2}`)
	d, _, err := Diff("old", strings.NewReader(oldRaw), "new", strings.NewReader(newRaw), 0)
	if err != nil || d == nil || d.Num != 2 {
		t.Fatalf("d=%+v err=%v", d, err)
	}
}

func TestFormatSweep(t *testing.T) {
	divOld := j(`{"t":0,"rank":0,"kind":"step","i1":1}`, `{"t":1,"rank":0,"kind":"step","i1":2}`)
	divNew := j(`{"t":0,"rank":0,"kind":"step","i1":1}`, `{"t":2,"rank":0,"kind":"step","i1":2}`)
	d, lines, err := Diff("a", strings.NewReader(divOld), "b", strings.NewReader(divNew), 1)
	if err != nil || d == nil {
		t.Fatal(err)
	}
	results := []SweepResult{
		{Point: SweepPoint{"puma", 1}, Lines: 40},
		{Point: SweepPoint{"puma", 8}, Lines: lines, Div: d},
		{Point: SweepPoint{"ec2", 1}, Lines: 40},
		{Point: SweepPoint{"ec2", 8}, Err: errors.New("boom")},
	}
	out := FormatSweep(results)
	for _, want := range []string{"platform", "puma", "ec2", "same", "L2", "ERR", "puma × 8: line 2", "ec2 × 8: error: boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep missing %q:\n%s", want, out)
		}
	}
	// Grid rows must keep first-appearance order: puma before ec2.
	if strings.Index(out, "puma") > strings.Index(out, "ec2") {
		t.Errorf("platform order not preserved:\n%s", out)
	}
}
