// Package trace exports virtual-time execution profiles in the Chrome
// trace-event JSON format (load chrome://tracing or Perfetto), one track
// per rank with a slice per solver phase. This is the observability layer a
// production release of the paper's system would ship: it makes the
// difference between a compute-bound lagrange iteration and a
// communication-bound puma iteration directly visible.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"heterohpc/internal/vclock"
)

// event is one Chrome trace event: a "complete" slice (ph = "X") or a
// decision instant (ph = "i"). Timestamps and durations are microseconds.
type event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	S    string            `json:"s,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome renders per-rank, per-step phase breakdowns as a Chrome trace.
// perRank[r][s] is rank r's phase times in step s; within a step, phases are
// laid out sequentially in solver order (assembly → precond → solve →
// other), which matches how the applications execute them.
func WriteChrome(w io.Writer, jobName string, perRank [][]vclock.PhaseTimes) error {
	return WriteChromeWithDecisions(w, jobName, perRank, nil)
}

// WriteChromeWithDecisions renders the phase timeline with the supervisor's
// recovery decisions overlaid as global instant events, so a failure, the
// shrink, the restore and the completion appear on the same time axis as
// the per-rank solver slices.
func WriteChromeWithDecisions(w io.Writer, jobName string, perRank [][]vclock.PhaseTimes, decisions []Decision) error {
	if len(perRank) == 0 {
		return fmt.Errorf("trace: no ranks")
	}
	nsteps := len(perRank[0])
	for r, steps := range perRank {
		if len(steps) != nsteps {
			return fmt.Errorf("trace: rank %d has %d steps, rank 0 has %d", r, len(steps), nsteps)
		}
	}
	order := []vclock.Phase{
		vclock.PhaseAssembly, vclock.PhasePrecond, vclock.PhaseSolve, vclock.PhaseOther,
	}
	var events []event
	for r, steps := range perRank {
		var cursor float64 // µs
		for s, pt := range steps {
			for _, ph := range order {
				durUS := pt.Phase(ph) * 1e6
				if durUS <= 0 {
					continue
				}
				events = append(events, event{
					Name: ph.String(),
					Cat:  jobName,
					Ph:   "X",
					Ts:   cursor,
					Dur:  durUS,
					Pid:  0,
					Tid:  r,
					Args: map[string]string{
						"step": fmt.Sprint(s),
						"comm": fmt.Sprintf("%.1f%%", commShare(pt, ph)*100),
					},
				})
				cursor += durUS
			}
		}
	}
	for _, d := range decisions {
		events = append(events, event{
			Name: d.Kind,
			Cat:  jobName,
			Ph:   "i",
			Ts:   d.AtS * 1e6,
			S:    "g", // global scope: spans all rank tracks
			Args: map[string]string{"detail": d.Detail},
		})
	}
	doc := struct {
		TraceEvents []event `json:"traceEvents"`
		DisplayUnit string  `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func commShare(pt vclock.PhaseTimes, ph vclock.Phase) float64 {
	total := pt.Phase(ph)
	if total <= 0 {
		return 0
	}
	return pt.Comm[ph] / total
}
