package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"heterohpc/internal/obs"
)

// Decision is one supervisor action worth auditing after a faulted run:
// a failure observation, a backoff, a re-provisioning, a restore, a
// degradation. AtS is the virtual time the decision applies to.
type Decision struct {
	// AtS is the decision's virtual time in seconds.
	AtS float64
	// Kind labels the decision ("failure", "backoff", "provision",
	// "restore", "degrade", "complete", ...).
	Kind string
	// Detail is the human-readable account.
	Detail string
}

// String renders one decision line.
func (d Decision) String() string {
	return fmt.Sprintf("t=%8.1fs  %-10s %s", d.AtS, d.Kind, d.Detail)
}

// Recorder accumulates supervisor decisions. Safe for concurrent use; the
// zero value is ready.
type Recorder struct {
	mu  sync.Mutex
	ds  []Decision
	obs *obs.Recorder
}

// Observe mirrors every subsequent decision into run's global journal as a
// kind/detail event at the decision's virtual time. A nil run detaches the
// mirror.
func (rec *Recorder) Observe(run *obs.Run) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.obs = run.Global()
}

// Record appends a decision.
func (rec *Recorder) Record(atS float64, kind, format string, args ...any) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	d := Decision{AtS: atS, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	rec.ds = append(rec.ds, d)
	rec.obs.EventAt(d.AtS, d.Kind, d.Detail)
}

// Decisions returns a copy of the log in record order.
func (rec *Recorder) Decisions() []Decision {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]Decision(nil), rec.ds...)
}

// Format renders the log as an indented block for reports.
func (rec *Recorder) Format() string {
	ds := rec.Decisions()
	if len(ds) == 0 {
		return "  (no decisions recorded)"
	}
	var b strings.Builder
	for i, d := range ds {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString("  ")
		b.WriteString(d.String())
	}
	return b.String()
}

// WriteChrome renders the decisions as Chrome trace instant events ("i"),
// one global track, so recovery actions can be overlaid on the per-rank
// phase timeline of WriteChrome.
func (rec *Recorder) WriteChrome(w io.Writer, jobName string) error {
	type instant struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		S    string            `json:"s"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	ds := rec.Decisions()
	events := make([]instant, 0, len(ds))
	for _, d := range ds {
		events = append(events, instant{
			Name: d.Kind,
			Cat:  jobName,
			Ph:   "i",
			Ts:   d.AtS * 1e6,
			S:    "g", // global scope: spans all rank tracks
			Args: map[string]string{"detail": d.Detail},
		})
	}
	doc := struct {
		TraceEvents []instant `json:"traceEvents"`
		DisplayUnit string    `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"}
	return json.NewEncoder(w).Encode(doc)
}
