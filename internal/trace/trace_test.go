package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"heterohpc/internal/core"
	"heterohpc/internal/vclock"
)

func TestWriteChromeStructure(t *testing.T) {
	mk := func(a, s float64) vclock.PhaseTimes {
		var pt vclock.PhaseTimes
		pt.Compute[vclock.PhaseAssembly] = a
		pt.Comm[vclock.PhaseSolve] = s
		return pt
	}
	perRank := [][]vclock.PhaseTimes{
		{mk(0.1, 0.2), mk(0.1, 0.3)},
		{mk(0.2, 0.1), mk(0.2, 0.1)},
	}
	var b strings.Builder
	if err := WriteChrome(&b, "test-job", perRank); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 ranks × 2 steps × 2 nonzero phases.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d events", len(doc.TraceEvents))
	}
	// Events on one rank must be non-overlapping and ordered.
	var lastEnd float64
	for _, e := range doc.TraceEvents {
		if e.Tid != 0 {
			continue
		}
		if e.Ts < lastEnd-1e-9 {
			t.Fatalf("overlapping events on rank 0 at ts=%v", e.Ts)
		}
		lastEnd = e.Ts + e.Dur
		if e.Ph != "X" {
			t.Fatalf("event phase %q", e.Ph)
		}
	}
	// Total duration on rank 0: (0.1+0.2 + 0.1+0.3) s = 0.7e6 µs.
	if lastEnd < 0.699e6 || lastEnd > 0.701e6 {
		t.Fatalf("rank 0 timeline ends at %v µs, want 0.7e6", lastEnd)
	}
}

func TestWriteChromeValidation(t *testing.T) {
	var b strings.Builder
	if err := WriteChrome(&b, "x", nil); err == nil {
		t.Error("empty input accepted")
	}
	ragged := [][]vclock.PhaseTimes{make([]vclock.PhaseTimes, 2), make([]vclock.PhaseTimes, 1)}
	if err := WriteChrome(&b, "x", ragged); err == nil {
		t.Error("ragged input accepted")
	}
}

// End-to-end: a real report's per-rank data renders to a loadable trace.
func TestWriteChromeFromReport(t *testing.T) {
	tg, err := core.NewTarget("ec2", 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := core.WeakRD(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tg.Run(core.JobSpec{Ranks: 8, App: app})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteChrome(&b, "rd-on-ec2", rep.PerRankSteps); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatal("invalid JSON")
	}
	if !strings.Contains(b.String(), `"assembly"`) || !strings.Contains(b.String(), `"solve"`) {
		t.Fatal("missing phase names")
	}
}

func TestRecorder(t *testing.T) {
	var rec Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec.Record(float64(i), "failure", "node %d died", i)
		}(i)
	}
	wg.Wait()
	ds := rec.Decisions()
	if len(ds) != 8 {
		t.Fatalf("%d decisions, want 8", len(ds))
	}
	if s := rec.Format(); !strings.Contains(s, "failure") {
		t.Errorf("format lacks kind: %q", s)
	}
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf, "job"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string  `json:"ph"`
			S  string  `json:"s"`
			Ts float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("%d trace events, want 8", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "i" || e.S != "g" {
			t.Errorf("event %+v not a global instant", e)
		}
	}
	if (&Recorder{}).Format() == "" {
		t.Error("empty recorder formats to nothing")
	}
}

func TestWriteChromeWithDecisionsOverlay(t *testing.T) {
	var pt vclock.PhaseTimes
	pt.Compute[vclock.PhaseAssembly] = 0.5
	perRank := [][]vclock.PhaseTimes{{pt}}
	decisions := []Decision{
		{AtS: 0.25, Kind: "failure", Detail: "crash killed node 1"},
		{AtS: 0.25, Kind: "shrink", Detail: "world shrunk 8 -> 6 ranks"},
	}
	var b strings.Builder
	if err := WriteChromeWithDecisions(&b, "job", perRank, decisions); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	var slices, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.S != "" {
				t.Fatalf("slice event carries scope %q", e.S)
			}
		case "i":
			instants++
			if e.S != "g" || e.Ts != 0.25e6 || e.Args["detail"] == "" {
				t.Fatalf("bad instant %+v", e)
			}
		}
	}
	if slices != 1 || instants != 2 {
		t.Fatalf("%d slices, %d instants; want 1 and 2", slices, instants)
	}
}
