// Package vclock implements the virtual-time accounting that stands in for
// wall-clock measurement on the paper's physical platforms.
//
// The numerical applications in this repository execute for real: matrices
// are assembled, Krylov iterations run, and messages move between ranks. But
// the quantity the paper reports — wall-clock seconds on a 2012 Opteron or
// Xeon node behind a particular interconnect — cannot be measured here.
// Instead, every rank owns a Clock. Compute kernels report their operation
// counts (floating-point operations and bytes touched) and the clock converts
// them to seconds using the target platform's calibrated rate; the message
// passing layer (internal/mp) charges communication time from the network
// model (internal/netmodel). Per-phase times are accumulated so the harness
// can report assembly / preconditioner / solve splits exactly as Figure 4 of
// the paper does.
package vclock

import "fmt"

// Phase identifies which stage of the solver a charge belongs to. The phases
// mirror the paper's instrumentation of one time-step iteration.
type Phase int

const (
	// PhaseOther covers setup work outside the three measured kernels.
	PhaseOther Phase = iota
	// PhaseAssembly is matrix/vector assembly (paper step ii).
	PhaseAssembly
	// PhasePrecond is preconditioner construction (paper step iiia).
	PhasePrecond
	// PhaseSolve is the preconditioned iterative solve (paper step iiib).
	PhaseSolve
	numPhases
)

// String returns the short lower-case name used in report tables.
func (p Phase) String() string {
	switch p {
	case PhaseOther:
		return "other"
	case PhaseAssembly:
		return "assembly"
	case PhasePrecond:
		return "precond"
	case PhaseSolve:
		return "solve"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Phases lists the measured phases in report order.
var Phases = []Phase{PhaseAssembly, PhasePrecond, PhaseSolve, PhaseOther}

// ComputeRater converts an operation count into seconds of virtual time.
// Platforms implement this with their calibrated per-core rates.
type ComputeRater interface {
	// ComputeSeconds returns the time to execute flops floating point
	// operations while streaming bytes of memory traffic on one core.
	ComputeSeconds(flops, bytes float64) float64
}

// LinearRater is a simple additive roofline model: compute time is the sum
// of the arithmetic time (flops / FlopsPerSec) and the memory-traffic time
// (bytes / BytesPerSec). The platform catalog calibrates one per machine.
type LinearRater struct {
	// FlopsPerSec is the sustained per-core floating-point rate.
	FlopsPerSec float64
	// BytesPerSec is the sustained per-core memory bandwidth.
	BytesPerSec float64
}

// ComputeSeconds implements ComputeRater.
func (r LinearRater) ComputeSeconds(flops, bytes float64) float64 {
	var t float64
	if r.FlopsPerSec > 0 {
		t += flops / r.FlopsPerSec
	}
	if r.BytesPerSec > 0 {
		t += bytes / r.BytesPerSec
	}
	return t
}

// Clock tracks one rank's virtual time, split by phase and by kind
// (compute vs. communication). The zero value is unusable; use New.
type Clock struct {
	rater ComputeRater

	phase   Phase
	onPhase PhaseListener

	// now is the rank's current virtual time, maintained directly so that
	// AdvanceTo(t) lands on exactly t: message-arrival processing order
	// (which depends on goroutine scheduling) then cannot perturb the clock
	// by floating-point rounding, keeping runs bit-deterministic.
	now float64

	compute [numPhases]float64
	comm    [numPhases]float64

	flops    float64
	bytes    float64
	msgCount int64
	msgBytes int64
}

// New returns a clock that converts compute charges with rater.
func New(rater ComputeRater) *Clock {
	if rater == nil {
		panic("vclock: nil ComputeRater")
	}
	return &Clock{rater: rater}
}

// NewAt returns a clock whose virtual time starts at t0 with empty phase
// accounts — the clock of a rank resuming inside a shrunk world, which
// carries its absolute time across the re-formation without attributing the
// pre-shrink span to any phase (AdvanceTo would book it as communication).
func NewAt(rater ComputeRater, t0 float64) *Clock {
	c := New(rater)
	if t0 > 0 {
		c.now = t0
	}
	return c
}

// PhaseListener observes phase transitions. t is the clock's virtual time at
// the moment of the switch. The listener must not call back into the clock.
type PhaseListener func(t float64, from, to Phase)

// SetPhaseListener installs fn to be called on every phase change (nil
// removes it). The observability layer uses this so vclock need not depend
// on it.
func (c *Clock) SetPhaseListener(fn PhaseListener) { c.onPhase = fn }

// SetPhase selects the phase subsequent charges accrue to and returns the
// previous phase so callers can restore it.
func (c *Clock) SetPhase(p Phase) Phase {
	old := c.phase
	c.phase = p
	if c.onPhase != nil && p != old {
		c.onPhase(c.now, old, p)
	}
	return old
}

// Phase returns the phase charges currently accrue to.
func (c *Clock) Phase() Phase { return c.phase }

// ChargeCompute records flops floating-point operations and bytes of memory
// traffic in the current phase.
func (c *Clock) ChargeCompute(flops, bytes float64) {
	if flops < 0 || bytes < 0 {
		panic("vclock: negative compute charge")
	}
	c.flops += flops
	c.bytes += bytes
	s := c.rater.ComputeSeconds(flops, bytes)
	c.compute[c.phase] += s
	c.now += s
}

// ChargeComm records seconds of communication time for a message of the
// given payload size in the current phase. The seconds are computed by the
// fabric (netmodel); the clock only accumulates them.
func (c *Clock) ChargeComm(seconds float64, payloadBytes int) {
	if seconds < 0 {
		panic("vclock: negative comm charge")
	}
	c.comm[c.phase] += seconds
	c.now += seconds
	c.msgCount++
	c.msgBytes += int64(payloadBytes)
}

// Now returns the rank's current virtual time.
func (c *Clock) Now() float64 { return c.now }

// AdvanceTo moves the clock forward to exactly t (if t is in the future),
// attributing the idle gap to communication in the current phase. The
// message-passing layer uses this to model a rank blocking on a peer; the
// exact assignment keeps the clock independent of message-arrival order.
func (c *Clock) AdvanceTo(t float64) {
	if t > c.now {
		c.comm[c.phase] += t - c.now
		c.now = t
	}
}

// PhaseTotal returns compute+comm virtual seconds accrued in phase p.
func (c *Clock) PhaseTotal(p Phase) float64 {
	return c.compute[p] + c.comm[p]
}

// PhaseComm returns the communication share of phase p.
func (c *Clock) PhaseComm(p Phase) float64 { return c.comm[p] }

// PhaseCompute returns the compute share of phase p.
func (c *Clock) PhaseCompute(p Phase) float64 { return c.compute[p] }

// Counters returns lifetime totals: floating point operations, compute bytes,
// message count and message payload bytes.
func (c *Clock) Counters() (flops, bytes float64, msgs, msgBytes int64) {
	return c.flops, c.bytes, c.msgCount, c.msgBytes
}

// Snapshot captures the per-phase totals of a clock at a point in time.
type Snapshot struct {
	Compute [numPhases]float64
	Comm    [numPhases]float64
}

// Snapshot returns the clock's current per-phase totals.
func (c *Clock) Snapshot() Snapshot {
	return Snapshot{Compute: c.compute, Comm: c.comm}
}

// Since returns per-phase elapsed virtual time between snapshot s and the
// clock's current state.
func (c *Clock) Since(s Snapshot) PhaseTimes {
	var pt PhaseTimes
	for i := Phase(0); i < numPhases; i++ {
		pt.Compute[i] = c.compute[i] - s.Compute[i]
		pt.Comm[i] = c.comm[i] - s.Comm[i]
	}
	return pt
}

// PhaseTimes is an elapsed-time breakdown by phase and kind.
type PhaseTimes struct {
	Compute [numPhases]float64
	Comm    [numPhases]float64
}

// Total returns the sum over all phases and kinds.
func (t PhaseTimes) Total() float64 {
	var sum float64
	for i := Phase(0); i < numPhases; i++ {
		sum += t.Compute[i] + t.Comm[i]
	}
	return sum
}

// Phase returns compute+comm elapsed time in phase p.
func (t PhaseTimes) Phase(p Phase) float64 {
	return t.Compute[p] + t.Comm[p]
}

// Add returns the element-wise sum of two breakdowns.
func (t PhaseTimes) Add(o PhaseTimes) PhaseTimes {
	var r PhaseTimes
	for i := Phase(0); i < numPhases; i++ {
		r.Compute[i] = t.Compute[i] + o.Compute[i]
		r.Comm[i] = t.Comm[i] + o.Comm[i]
	}
	return r
}

// Scale returns the breakdown multiplied by f.
func (t PhaseTimes) Scale(f float64) PhaseTimes {
	var r PhaseTimes
	for i := Phase(0); i < numPhases; i++ {
		r.Compute[i] = t.Compute[i] * f
		r.Comm[i] = t.Comm[i] * f
	}
	return r
}

// MaxOver returns the element-wise-by-phase maximum total across a set of
// rank breakdowns along with the maximum overall total. This matches the
// paper's reporting: "the average times of assembly, preconditioning, and
// solver phases with the total maximal iteration time".
func MaxOver(ts []PhaseTimes) (perPhaseMax PhaseTimes, maxTotal float64) {
	for _, t := range ts {
		for i := Phase(0); i < numPhases; i++ {
			if v := t.Compute[i] + t.Comm[i]; v > perPhaseMax.Compute[i] {
				// Store the phase max in the Compute slot; Comm left zero.
				perPhaseMax.Compute[i] = v
			}
		}
		if tot := t.Total(); tot > maxTotal {
			maxTotal = tot
		}
	}
	return perPhaseMax, maxTotal
}
