package vclock

import (
	"math"
	"testing"
	"testing/quick"
)

func testRater() LinearRater {
	return LinearRater{FlopsPerSec: 1e9, BytesPerSec: 4e9}
}

func TestLinearRater(t *testing.T) {
	r := LinearRater{FlopsPerSec: 2e9, BytesPerSec: 8e9}
	got := r.ComputeSeconds(2e9, 8e9)
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("ComputeSeconds = %v, want 2", got)
	}
	if r.ComputeSeconds(0, 0) != 0 {
		t.Fatal("zero work should cost zero time")
	}
}

func TestChargeComputeAccumulates(t *testing.T) {
	c := New(testRater())
	c.SetPhase(PhaseAssembly)
	c.ChargeCompute(1e9, 0) // 1 second
	c.ChargeCompute(0, 4e9) // 1 second
	if got := c.PhaseTotal(PhaseAssembly); math.Abs(got-2) > 1e-12 {
		t.Fatalf("assembly total = %v, want 2", got)
	}
	if got := c.Now(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Now = %v, want 2", got)
	}
}

func TestPhaseAttribution(t *testing.T) {
	c := New(testRater())
	c.SetPhase(PhaseAssembly)
	c.ChargeCompute(1e9, 0)
	prev := c.SetPhase(PhaseSolve)
	if prev != PhaseAssembly {
		t.Fatalf("SetPhase returned %v", prev)
	}
	c.ChargeComm(0.5, 100)
	if got := c.PhaseTotal(PhaseAssembly); math.Abs(got-1) > 1e-12 {
		t.Errorf("assembly = %v", got)
	}
	if got := c.PhaseComm(PhaseSolve); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("solve comm = %v", got)
	}
	if got := c.PhaseCompute(PhaseSolve); got != 0 {
		t.Errorf("solve compute = %v", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New(testRater())
	c.SetPhase(PhaseSolve)
	c.ChargeCompute(1e9, 0) // now = 1
	c.AdvanceTo(3)          // idle 2s charged as comm
	if got := c.Now(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Now = %v, want 3", got)
	}
	if got := c.PhaseComm(PhaseSolve); math.Abs(got-2) > 1e-12 {
		t.Fatalf("idle comm = %v, want 2", got)
	}
	// Advancing backwards is a no-op.
	c.AdvanceTo(1)
	if got := c.Now(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("AdvanceTo went backwards: %v", got)
	}
}

func TestSnapshotSince(t *testing.T) {
	c := New(testRater())
	c.SetPhase(PhaseAssembly)
	c.ChargeCompute(2e9, 0)
	snap := c.Snapshot()
	c.ChargeCompute(1e9, 0)
	c.SetPhase(PhaseSolve)
	c.ChargeComm(0.25, 8)
	d := c.Since(snap)
	if got := d.Phase(PhaseAssembly); math.Abs(got-1) > 1e-12 {
		t.Errorf("delta assembly = %v, want 1", got)
	}
	if got := d.Phase(PhaseSolve); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("delta solve = %v, want 0.25", got)
	}
	if got := d.Total(); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("delta total = %v, want 1.25", got)
	}
}

func TestCounters(t *testing.T) {
	c := New(testRater())
	c.ChargeCompute(100, 200)
	c.ChargeComm(0.1, 50)
	c.ChargeComm(0.1, 70)
	flops, bytes, msgs, msgBytes := c.Counters()
	if flops != 100 || bytes != 200 {
		t.Errorf("compute counters %v %v", flops, bytes)
	}
	if msgs != 2 || msgBytes != 120 {
		t.Errorf("message counters %v %v", msgs, msgBytes)
	}
}

func TestNegativeChargesPanic(t *testing.T) {
	c := New(testRater())
	for name, f := range map[string]func(){
		"compute": func() { c.ChargeCompute(-1, 0) },
		"comm":    func() { c.ChargeComm(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative charge did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNilRaterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil)
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseOther:    "other",
		PhaseAssembly: "assembly",
		PhasePrecond:  "precond",
		PhaseSolve:    "solve",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestPhaseTimesAddScale(t *testing.T) {
	var a, b PhaseTimes
	a.Compute[PhaseAssembly] = 1
	a.Comm[PhaseSolve] = 2
	b.Compute[PhaseAssembly] = 3
	sum := a.Add(b)
	if sum.Phase(PhaseAssembly) != 4 || sum.Phase(PhaseSolve) != 2 {
		t.Fatalf("Add wrong: %+v", sum)
	}
	half := sum.Scale(0.5)
	if half.Total() != 3 {
		t.Fatalf("Scale wrong: %v", half.Total())
	}
}

func TestMaxOver(t *testing.T) {
	var a, b PhaseTimes
	a.Compute[PhaseAssembly] = 5
	a.Comm[PhaseSolve] = 1
	b.Compute[PhaseAssembly] = 2
	b.Comm[PhaseSolve] = 9
	perPhase, maxTotal := MaxOver([]PhaseTimes{a, b})
	if got := perPhase.Phase(PhaseAssembly); got != 5 {
		t.Errorf("max assembly = %v", got)
	}
	if got := perPhase.Phase(PhaseSolve); got != 9 {
		t.Errorf("max solve = %v", got)
	}
	if maxTotal != 11 {
		t.Errorf("max total = %v", maxTotal)
	}
}

// Property: Now always equals the sum of the phase totals, regardless of
// charge order.
func TestNowEqualsPhaseSumProperty(t *testing.T) {
	f := func(charges []uint16) bool {
		c := New(testRater())
		for i, ch := range charges {
			c.SetPhase(Phases[i%len(Phases)])
			if i%2 == 0 {
				c.ChargeCompute(float64(ch)*1e6, float64(ch)*1e6)
			} else {
				c.ChargeComm(float64(ch)*1e-6, int(ch))
			}
		}
		var sum float64
		for _, p := range Phases {
			sum += c.PhaseTotal(p)
		}
		return math.Abs(sum-c.Now()) < 1e-9*(1+sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
