package mesh

import (
	"fmt"
	"sort"
)

// Block is a contiguous range of elements in each lattice dimension
// (Lo inclusive, Hi exclusive). The weak-scaling experiments decompose the
// global cube into p×p×p blocks, one per rank — the balanced, minimal-
// surface partition ParMETIS converges to on a structured cube.
type Block struct {
	Lo, Hi [3]int
}

// NumElems returns the number of elements in the block.
func (b Block) NumElems() int {
	return (b.Hi[0] - b.Lo[0]) * (b.Hi[1] - b.Lo[1]) * (b.Hi[2] - b.Lo[2])
}

// splitRange divides n items into parts near-equal chunks: the first n%parts
// chunks get one extra item. It returns the bounds of chunk idx.
func splitRange(n, parts, idx int) (lo, hi int) {
	q, r := n/parts, n%parts
	if idx < r {
		lo = idx * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (idx-r)*q
	return lo, lo + q
}

// chunkOf inverts splitRange: it returns the chunk index containing item i.
func chunkOf(n, parts, i int) int {
	q, r := n/parts, n%parts
	if i < r*(q+1) {
		return i / (q + 1)
	}
	return r + (i-r*(q+1))/q
}

// Decompose splits the mesh into px×py×pz blocks, returned in rank order
// rank = bx + px·(by + py·bz). Every element belongs to exactly one block.
func Decompose(m *Mesh, px, py, pz int) ([]Block, error) {
	if px < 1 || py < 1 || pz < 1 {
		return nil, fmt.Errorf("mesh: non-positive block grid %d×%d×%d", px, py, pz)
	}
	if px > m.Nx || py > m.Ny || pz > m.Nz {
		return nil, fmt.Errorf("mesh: block grid %d×%d×%d exceeds mesh %d×%d×%d",
			px, py, pz, m.Nx, m.Ny, m.Nz)
	}
	blocks := make([]Block, 0, px*py*pz)
	for c := 0; c < pz; c++ {
		zlo, zhi := splitRange(m.Nz, pz, c)
		for b := 0; b < py; b++ {
			ylo, yhi := splitRange(m.Ny, py, b)
			for a := 0; a < px; a++ {
				xlo, xhi := splitRange(m.Nx, px, a)
				blocks = append(blocks, Block{
					Lo: [3]int{xlo, ylo, zlo},
					Hi: [3]int{xhi, yhi, zhi},
				})
			}
		}
	}
	return blocks, nil
}

// CubeGrid returns (p,p,p) when ranks = p³, or an error otherwise. The
// paper's weak-scaling series uses exactly the cubic process counts
// 1, 8, 27, …, 1000.
func CubeGrid(ranks int) (int, error) {
	for p := 1; p*p*p <= ranks; p++ {
		if p*p*p == ranks {
			return p, nil
		}
	}
	return 0, fmt.Errorf("mesh: %d is not a cube", ranks)
}

// Local is one rank's view of a distributed mesh: its own elements plus the
// vertices they touch. Vertices are split into owned (assembled rows live
// here) and ghost (owned by another rank; values are imported before use).
// Local vertex numbering places all owned vertices first, each section in
// ascending global order.
type Local struct {
	// M is the global mesh (element connectivity is computed from it).
	M *Mesh
	// Rank is the owning rank.
	Rank int
	// Elems lists the global element ids assigned to this rank.
	Elems []int
	// VertGlobal maps local vertex index -> global vertex id; owned first.
	VertGlobal []int
	// NumOwned is the count of owned vertices (a prefix of VertGlobal).
	NumOwned int
	// G2L maps global vertex id -> local index for all local vertices.
	G2L map[int]int
	// GhostOwner[i] is the owner rank of ghost vertex NumOwned+i.
	GhostOwner []int
}

// NumVerts returns the total (owned + ghost) local vertex count.
func (l *Local) NumVerts() int { return len(l.VertGlobal) }

// NumGhosts returns the ghost vertex count.
func (l *Local) NumGhosts() int { return len(l.VertGlobal) - l.NumOwned }

// IsOwned reports whether local vertex lv is owned by this rank.
func (l *Local) IsOwned(lv int) bool { return lv < l.NumOwned }

// vertexOwnerBlock returns the rank owning lattice vertex (i,j,k) under a
// px×py×pz block decomposition: interface vertex layers belong to the
// higher block, which is the block of the element with the same index.
func vertexOwnerBlock(m *Mesh, px, py, pz, i, j, k int) int {
	bi := chunkOf(m.Nx, px, min(i, m.Nx-1))
	bj := chunkOf(m.Ny, py, min(j, m.Ny-1))
	bk := chunkOf(m.Nz, pz, min(k, m.Nz-1))
	return bi + px*(bj+py*bk)
}

// VertexOwnerOnBlocks returns the rank owning global vertex v under the
// px×py×pz block decomposition. It is a pure function of indices, usable
// for any vertex of the global mesh (including vertices outside the calling
// rank's patch, as required when resolving ghost matrix columns).
func VertexOwnerOnBlocks(m *Mesh, px, py, pz, v int) int {
	i, j, k := m.VertexIJK(v)
	return vertexOwnerBlock(m, px, py, pz, i, j, k)
}

// VertexOwnerOnParts returns the rank owning global vertex v under an
// arbitrary element partition (lowest rank among the owners of the elements
// containing v).
func VertexOwnerOnParts(m *Mesh, part []int, v int) int {
	return vertexOwnerParts(m, part, v)
}

// NewLocalFromBlock builds rank's local mesh for the px×py×pz block
// decomposition without touching any other block's data (so a 1000-rank job
// never materialises the 200³ global mesh).
func NewLocalFromBlock(m *Mesh, px, py, pz, rank int) (*Local, error) {
	nranks := px * py * pz
	if rank < 0 || rank >= nranks {
		return nil, fmt.Errorf("mesh: rank %d out of %d", rank, nranks)
	}
	if px > m.Nx || py > m.Ny || pz > m.Nz {
		return nil, fmt.Errorf("mesh: block grid %d×%d×%d exceeds mesh %d×%d×%d",
			px, py, pz, m.Nx, m.Ny, m.Nz)
	}
	bx := rank % px
	by := (rank / px) % py
	bz := rank / (px * py)
	xlo, xhi := splitRange(m.Nx, px, bx)
	ylo, yhi := splitRange(m.Ny, py, by)
	zlo, zhi := splitRange(m.Nz, pz, bz)

	l := &Local{M: m, Rank: rank}
	l.Elems = make([]int, 0, (xhi-xlo)*(yhi-ylo)*(zhi-zlo))
	for k := zlo; k < zhi; k++ {
		for j := ylo; j < yhi; j++ {
			for i := xlo; i < xhi; i++ {
				l.Elems = append(l.Elems, m.ElemID(i, j, k))
			}
		}
	}

	var owned, ghosts []int
	ghostOwner := map[int]int{}
	for k := zlo; k <= zhi; k++ {
		for j := ylo; j <= yhi; j++ {
			for i := xlo; i <= xhi; i++ {
				v := m.VertexID(i, j, k)
				owner := vertexOwnerBlock(m, px, py, pz, i, j, k)
				if owner == rank {
					owned = append(owned, v)
				} else {
					ghosts = append(ghosts, v)
					ghostOwner[v] = owner
				}
			}
		}
	}
	l.finish(owned, ghosts, ghostOwner)
	return l, nil
}

// NewLocalFromParts builds rank's local mesh from an arbitrary element
// partition (part[e] = owning rank), the path used with the RCB and greedy
// partitioners. A vertex is owned by the lowest rank among the owners of
// the elements containing it.
func NewLocalFromParts(m *Mesh, part []int, rank int) (*Local, error) {
	if len(part) != m.NumElems() {
		return nil, fmt.Errorf("mesh: partition has %d entries for %d elements",
			len(part), m.NumElems())
	}
	l := &Local{M: m, Rank: rank}
	vertSeen := map[int]bool{}
	for e, r := range part {
		if r == rank {
			l.Elems = append(l.Elems, e)
			for _, v := range m.ElemVerts(e) {
				vertSeen[v] = true
			}
		}
	}
	var owned, ghosts []int
	ghostOwner := map[int]int{}
	for v := range vertSeen {
		owner := vertexOwnerParts(m, part, v)
		if owner == rank {
			owned = append(owned, v)
		} else {
			ghosts = append(ghosts, v)
			ghostOwner[v] = owner
		}
	}
	l.finish(owned, ghosts, ghostOwner)
	return l, nil
}

// vertexOwnerParts returns the lowest rank owning an element that contains
// global vertex v. The containing elements of lattice vertex (i,j,k) are the
// up-to-8 elements with indices in {i-1,i}×{j-1,j}×{k-1,k}.
func vertexOwnerParts(m *Mesh, part []int, v int) int {
	i, j, k := m.VertexIJK(v)
	owner := -1
	for dk := -1; dk <= 0; dk++ {
		ek := k + dk
		if ek < 0 || ek >= m.Nz {
			continue
		}
		for dj := -1; dj <= 0; dj++ {
			ej := j + dj
			if ej < 0 || ej >= m.Ny {
				continue
			}
			for di := -1; di <= 0; di++ {
				ei := i + di
				if ei < 0 || ei >= m.Nx {
					continue
				}
				r := part[m.ElemID(ei, ej, ek)]
				if owner < 0 || r < owner {
					owner = r
				}
			}
		}
	}
	return owner
}

// finish sorts the owned/ghost sections and builds the index maps.
func (l *Local) finish(owned, ghosts []int, ghostOwner map[int]int) {
	sort.Ints(owned)
	sort.Ints(ghosts)
	l.NumOwned = len(owned)
	l.VertGlobal = append(owned, ghosts...)
	l.G2L = make(map[int]int, len(l.VertGlobal))
	for lv, gv := range l.VertGlobal {
		l.G2L[gv] = lv
	}
	l.GhostOwner = make([]int, len(ghosts))
	for i, gv := range ghosts {
		l.GhostOwner[i] = ghostOwner[gv]
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
