// Package mesh generates the structured hexahedral meshes used by the
// paper's two test cases. Both problems are posed on a cube; the paper's
// weak-scaling experiments load every MPI process with a 20³-element block
// of a global (20·p)³ mesh. The mesh is therefore represented implicitly:
// vertex coordinates, element connectivity and boundary predicates are all
// computed from indices, so a rank can instantiate only its own block of an
// arbitrarily large global mesh (the role NetGen/GMSH + ParMETIS played in
// the paper's pipeline).
package mesh

import "fmt"

// Box is an axis-aligned hexahedral domain.
type Box struct {
	Lo, Hi [3]float64
}

// UnitBox is the unit cube [0,1]³.
var UnitBox = Box{Lo: [3]float64{0, 0, 0}, Hi: [3]float64{1, 1, 1}}

// SymmetricBox is the cube [-1,1]³ used by the Ethier–Steinman benchmark.
var SymmetricBox = Box{Lo: [3]float64{-1, -1, -1}, Hi: [3]float64{1, 1, 1}}

// Mesh is a structured hexahedral mesh: Nx·Ny·Nz trilinear (Q1) elements on
// a box. Vertices are numbered lexicographically, x fastest:
//
//	v(i,j,k) = i + (Nx+1)·(j + (Ny+1)·k),  0 ≤ i ≤ Nx, …
//
// Elements likewise with Nx, Ny, Nz. The struct is immutable after creation
// and safe for concurrent use.
type Mesh struct {
	Nx, Ny, Nz int
	Box        Box
	hx, hy, hz float64
}

// NewUnitCube returns an n×n×n mesh of the unit cube.
func NewUnitCube(n int) *Mesh {
	m, err := NewBox(UnitBox, n, n, n)
	if err != nil {
		panic(err) // n validated below; only n<1 can fail
	}
	return m
}

// NewBox returns an nx×ny×nz mesh of box.
func NewBox(box Box, nx, ny, nz int) (*Mesh, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("mesh: non-positive element count %d×%d×%d", nx, ny, nz)
	}
	for d := 0; d < 3; d++ {
		if box.Hi[d] <= box.Lo[d] {
			return nil, fmt.Errorf("mesh: degenerate box in dimension %d", d)
		}
	}
	return &Mesh{
		Nx: nx, Ny: ny, Nz: nz,
		Box: box,
		hx:  (box.Hi[0] - box.Lo[0]) / float64(nx),
		hy:  (box.Hi[1] - box.Lo[1]) / float64(ny),
		hz:  (box.Hi[2] - box.Lo[2]) / float64(nz),
	}, nil
}

// NumElems returns the global element count.
func (m *Mesh) NumElems() int { return m.Nx * m.Ny * m.Nz }

// NumVerts returns the global vertex count.
func (m *Mesh) NumVerts() int { return (m.Nx + 1) * (m.Ny + 1) * (m.Nz + 1) }

// H returns the element edge lengths.
func (m *Mesh) H() (hx, hy, hz float64) { return m.hx, m.hy, m.hz }

// VertexID maps lattice coordinates to a global vertex id.
func (m *Mesh) VertexID(i, j, k int) int {
	return i + (m.Nx+1)*(j+(m.Ny+1)*k)
}

// VertexIJK inverts VertexID.
func (m *Mesh) VertexIJK(v int) (i, j, k int) {
	nx1 := m.Nx + 1
	ny1 := m.Ny + 1
	i = v % nx1
	j = (v / nx1) % ny1
	k = v / (nx1 * ny1)
	return
}

// VertexCoord returns the coordinates of global vertex v.
func (m *Mesh) VertexCoord(v int) (x, y, z float64) {
	i, j, k := m.VertexIJK(v)
	return m.Box.Lo[0] + float64(i)*m.hx,
		m.Box.Lo[1] + float64(j)*m.hy,
		m.Box.Lo[2] + float64(k)*m.hz
}

// ElemID maps lattice coordinates to a global element id.
func (m *Mesh) ElemID(i, j, k int) int {
	return i + m.Nx*(j+m.Ny*k)
}

// ElemIJK inverts ElemID.
func (m *Mesh) ElemIJK(e int) (i, j, k int) {
	i = e % m.Nx
	j = (e / m.Nx) % m.Ny
	k = e / (m.Nx * m.Ny)
	return
}

// ElemVerts returns the 8 global vertex ids of element e in the standard
// trilinear local ordering (x fastest, then y, then z).
func (m *Mesh) ElemVerts(e int) [8]int {
	i, j, k := m.ElemIJK(e)
	v000 := m.VertexID(i, j, k)
	nx1 := m.Nx + 1
	nxy := nx1 * (m.Ny + 1)
	return [8]int{
		v000, v000 + 1,
		v000 + nx1, v000 + nx1 + 1,
		v000 + nxy, v000 + nxy + 1,
		v000 + nxy + nx1, v000 + nxy + nx1 + 1,
	}
}

// ElemCenter returns the centroid of element e.
func (m *Mesh) ElemCenter(e int) (x, y, z float64) {
	i, j, k := m.ElemIJK(e)
	return m.Box.Lo[0] + (float64(i)+0.5)*m.hx,
		m.Box.Lo[1] + (float64(j)+0.5)*m.hy,
		m.Box.Lo[2] + (float64(k)+0.5)*m.hz
}

// OnBoundary reports whether global vertex v lies on the domain boundary.
func (m *Mesh) OnBoundary(v int) bool {
	i, j, k := m.VertexIJK(v)
	return i == 0 || i == m.Nx || j == 0 || j == m.Ny || k == 0 || k == m.Nz
}

// ElemNeighbors appends the face-adjacent neighbours of element e (up to 6)
// to buf and returns the extended slice. This is the element dual graph that
// graph partitioners (the ParMETIS role) operate on.
func (m *Mesh) ElemNeighbors(e int, buf []int) []int {
	i, j, k := m.ElemIJK(e)
	if i > 0 {
		buf = append(buf, m.ElemID(i-1, j, k))
	}
	if i < m.Nx-1 {
		buf = append(buf, m.ElemID(i+1, j, k))
	}
	if j > 0 {
		buf = append(buf, m.ElemID(i, j-1, k))
	}
	if j < m.Ny-1 {
		buf = append(buf, m.ElemID(i, j+1, k))
	}
	if k > 0 {
		buf = append(buf, m.ElemID(i, j, k-1))
	}
	if k < m.Nz-1 {
		buf = append(buf, m.ElemID(i, j, k+1))
	}
	return buf
}
