package mesh

import (
	"testing"
	"testing/quick"
)

func TestNewBoxValidation(t *testing.T) {
	if _, err := NewBox(UnitBox, 0, 1, 1); err == nil {
		t.Error("zero element count accepted")
	}
	bad := Box{Lo: [3]float64{0, 0, 0}, Hi: [3]float64{1, 0, 1}}
	if _, err := NewBox(bad, 1, 1, 1); err == nil {
		t.Error("degenerate box accepted")
	}
}

func TestCounts(t *testing.T) {
	m := NewUnitCube(4)
	if m.NumElems() != 64 {
		t.Errorf("NumElems = %d", m.NumElems())
	}
	if m.NumVerts() != 125 {
		t.Errorf("NumVerts = %d", m.NumVerts())
	}
	hx, hy, hz := m.H()
	if hx != 0.25 || hy != 0.25 || hz != 0.25 {
		t.Errorf("H = %v %v %v", hx, hy, hz)
	}
}

func TestVertexRoundTrip(t *testing.T) {
	m, _ := NewBox(UnitBox, 3, 4, 5)
	for v := 0; v < m.NumVerts(); v++ {
		i, j, k := m.VertexIJK(v)
		if m.VertexID(i, j, k) != v {
			t.Fatalf("vertex %d round-trips to %d", v, m.VertexID(i, j, k))
		}
	}
}

func TestElemRoundTrip(t *testing.T) {
	m, _ := NewBox(UnitBox, 3, 4, 5)
	for e := 0; e < m.NumElems(); e++ {
		i, j, k := m.ElemIJK(e)
		if m.ElemID(i, j, k) != e {
			t.Fatalf("elem %d round-trips to %d", e, m.ElemID(i, j, k))
		}
	}
}

func TestVertexCoordCorners(t *testing.T) {
	m, _ := NewBox(SymmetricBox, 2, 2, 2)
	x, y, z := m.VertexCoord(0)
	if x != -1 || y != -1 || z != -1 {
		t.Errorf("corner 0 at (%v,%v,%v)", x, y, z)
	}
	x, y, z = m.VertexCoord(m.NumVerts() - 1)
	if x != 1 || y != 1 || z != 1 {
		t.Errorf("last corner at (%v,%v,%v)", x, y, z)
	}
}

func TestElemVertsGeometry(t *testing.T) {
	m := NewUnitCube(3)
	for e := 0; e < m.NumElems(); e++ {
		cx, cy, cz := m.ElemCenter(e)
		verts := m.ElemVerts(e)
		// All 8 vertices must be exactly half an edge from the center in
		// each coordinate.
		hx, hy, hz := m.H()
		for _, v := range verts {
			x, y, z := m.VertexCoord(v)
			if abs(abs(x-cx)-hx/2) > 1e-12 || abs(abs(y-cy)-hy/2) > 1e-12 ||
				abs(abs(z-cz)-hz/2) > 1e-12 {
				t.Fatalf("elem %d vertex %d not on corner: (%v,%v,%v) center (%v,%v,%v)",
					e, v, x, y, z, cx, cy, cz)
			}
		}
		// Local ordering: vertex 1 differs from vertex 0 in x only, etc.
		x0, y0, z0 := m.VertexCoord(verts[0])
		x1, y1, z1 := m.VertexCoord(verts[1])
		if x1 <= x0 || y1 != y0 || z1 != z0 {
			t.Fatalf("elem %d local ordering broken", e)
		}
	}
}

func TestOnBoundaryCount(t *testing.T) {
	m := NewUnitCube(4)
	count := 0
	for v := 0; v < m.NumVerts(); v++ {
		if m.OnBoundary(v) {
			count++
		}
	}
	// Boundary vertices of a 5³ lattice: 5³ − 3³ interior = 125 − 27 = 98.
	if count != 98 {
		t.Fatalf("boundary vertex count = %d, want 98", count)
	}
}

func TestElemNeighborsSymmetricAndCounted(t *testing.T) {
	m, _ := NewBox(UnitBox, 3, 3, 3)
	adj := make(map[[2]int]bool)
	total := 0
	for e := 0; e < m.NumElems(); e++ {
		nbrs := m.ElemNeighbors(e, nil)
		total += len(nbrs)
		for _, n := range nbrs {
			adj[[2]int{e, n}] = true
		}
	}
	// Interior faces of a 3³ cube: 3 directions × 2 planes × 9 faces = 54
	// adjacencies, each counted twice.
	if total != 108 {
		t.Fatalf("total adjacency entries = %d, want 108", total)
	}
	for key := range adj {
		if !adj[[2]int{key[1], key[0]}] {
			t.Fatalf("adjacency %v not symmetric", key)
		}
	}
}

func TestDecomposeCoversAllElements(t *testing.T) {
	m, _ := NewBox(UnitBox, 7, 5, 6)
	blocks, err := Decompose(m, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 12 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	covered := make([]int, m.NumElems())
	totalElems := 0
	for _, b := range blocks {
		totalElems += b.NumElems()
		for k := b.Lo[2]; k < b.Hi[2]; k++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for i := b.Lo[0]; i < b.Hi[0]; i++ {
					covered[m.ElemID(i, j, k)]++
				}
			}
		}
	}
	if totalElems != m.NumElems() {
		t.Fatalf("blocks hold %d elements, mesh has %d", totalElems, m.NumElems())
	}
	for e, c := range covered {
		if c != 1 {
			t.Fatalf("element %d covered %d times", e, c)
		}
	}
}

func TestDecomposeValidation(t *testing.T) {
	m := NewUnitCube(2)
	if _, err := Decompose(m, 0, 1, 1); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := Decompose(m, 3, 1, 1); err == nil {
		t.Error("grid larger than mesh accepted")
	}
}

func TestCubeGrid(t *testing.T) {
	for p, want := range map[int]int{1: 1, 8: 2, 27: 3, 64: 4, 125: 5, 1000: 10} {
		got, err := CubeGrid(p)
		if err != nil || got != want {
			t.Errorf("CubeGrid(%d) = %d, %v", p, got, err)
		}
	}
	for _, p := range []int{0, 2, 7, 100} {
		if _, err := CubeGrid(p); err == nil {
			t.Errorf("CubeGrid(%d) accepted", p)
		}
	}
}

func TestSplitRangeProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%100) + 1
		p := int(pRaw%uint8(n)) + 1
		prevHi := 0
		for idx := 0; idx < p; idx++ {
			lo, hi := splitRange(n, p, idx)
			if lo != prevHi || hi < lo {
				return false
			}
			if hi-lo < n/p || hi-lo > n/p+1 {
				return false // imbalance beyond one element
			}
			// chunkOf must invert membership.
			for i := lo; i < hi; i++ {
				if chunkOf(n, p, i) != idx {
					return false
				}
			}
			prevHi = hi
		}
		return prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Every vertex must be owned by exactly one rank, and local meshes must
// jointly cover all elements exactly once (block path).
func TestLocalFromBlockConsistency(t *testing.T) {
	m, _ := NewBox(UnitBox, 5, 4, 6)
	const px, py, pz = 2, 2, 3
	nranks := px * py * pz
	vertOwners := make(map[int][]int)
	elemSeen := make([]int, m.NumElems())
	for rank := 0; rank < nranks; rank++ {
		l, err := NewLocalFromBlock(m, px, py, pz, rank)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range l.Elems {
			elemSeen[e]++
		}
		for lv := 0; lv < l.NumOwned; lv++ {
			gv := l.VertGlobal[lv]
			vertOwners[gv] = append(vertOwners[gv], rank)
		}
		// Local invariants.
		if len(l.GhostOwner) != l.NumGhosts() {
			t.Fatalf("rank %d ghost owner list mismatched", rank)
		}
		for i, owner := range l.GhostOwner {
			if owner == rank {
				t.Fatalf("rank %d ghost %d owned by itself", rank, i)
			}
		}
		for lv, gv := range l.VertGlobal {
			if l.G2L[gv] != lv {
				t.Fatalf("rank %d G2L broken at %d", rank, lv)
			}
		}
	}
	for e, c := range elemSeen {
		if c != 1 {
			t.Fatalf("element %d assigned %d times", e, c)
		}
	}
	for v := 0; v < m.NumVerts(); v++ {
		if len(vertOwners[v]) != 1 {
			t.Fatalf("vertex %d owned by %v", v, vertOwners[v])
		}
	}
}

// Ghost owner bookkeeping must agree with actual ownership (block path).
func TestLocalFromBlockGhostOwnersCorrect(t *testing.T) {
	m := NewUnitCube(6)
	const px, py, pz = 2, 3, 2
	nranks := px * py * pz
	owner := make(map[int]int)
	locals := make([]*Local, nranks)
	for rank := 0; rank < nranks; rank++ {
		l, err := NewLocalFromBlock(m, px, py, pz, rank)
		if err != nil {
			t.Fatal(err)
		}
		locals[rank] = l
		for lv := 0; lv < l.NumOwned; lv++ {
			owner[l.VertGlobal[lv]] = rank
		}
	}
	for rank, l := range locals {
		for i, want := range l.GhostOwner {
			gv := l.VertGlobal[l.NumOwned+i]
			if owner[gv] != want {
				t.Fatalf("rank %d ghost %d: recorded owner %d, actual %d",
					rank, gv, want, owner[gv])
			}
		}
	}
}

// The parts-based path must satisfy the same global invariants for an
// arbitrary partition.
func TestLocalFromPartsConsistency(t *testing.T) {
	m := NewUnitCube(4)
	part := make([]int, m.NumElems())
	for e := range part {
		part[e] = (e * 7) % 5 // scrambled 5-way partition
	}
	vertOwnerCount := make(map[int]int)
	elemSeen := make([]int, m.NumElems())
	owner := make(map[int]int)
	locals := make([]*Local, 5)
	for rank := 0; rank < 5; rank++ {
		l, err := NewLocalFromParts(m, part, rank)
		if err != nil {
			t.Fatal(err)
		}
		locals[rank] = l
		for _, e := range l.Elems {
			elemSeen[e]++
			if part[e] != rank {
				t.Fatalf("rank %d got element %d of rank %d", rank, e, part[e])
			}
		}
		for lv := 0; lv < l.NumOwned; lv++ {
			vertOwnerCount[l.VertGlobal[lv]]++
			owner[l.VertGlobal[lv]] = rank
		}
	}
	for e, c := range elemSeen {
		if c != 1 {
			t.Fatalf("element %d assigned %d times", e, c)
		}
	}
	for v := 0; v < m.NumVerts(); v++ {
		if vertOwnerCount[v] != 1 {
			t.Fatalf("vertex %d owned %d times", v, vertOwnerCount[v])
		}
	}
	for rank, l := range locals {
		for i, want := range l.GhostOwner {
			gv := l.VertGlobal[l.NumOwned+i]
			if owner[gv] != want {
				t.Fatalf("rank %d ghost %d: recorded owner %d, actual %d",
					rank, gv, want, owner[gv])
			}
		}
	}
}

func TestLocalFromPartsValidation(t *testing.T) {
	m := NewUnitCube(2)
	if _, err := NewLocalFromParts(m, []int{0}, 0); err == nil {
		t.Error("short partition accepted")
	}
}

func TestLocalFromBlockValidation(t *testing.T) {
	m := NewUnitCube(2)
	if _, err := NewLocalFromBlock(m, 2, 2, 2, 8); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := NewLocalFromBlock(m, 3, 1, 1, 0); err == nil {
		t.Error("grid exceeding mesh accepted")
	}
}

// Block and parts construction must agree when the partition is the block
// partition.
func TestBlockAndPartsAgree(t *testing.T) {
	m, _ := NewBox(UnitBox, 4, 4, 4)
	const px, py, pz = 2, 2, 1
	blocks, _ := Decompose(m, px, py, pz)
	part := make([]int, m.NumElems())
	for rank, b := range blocks {
		for k := b.Lo[2]; k < b.Hi[2]; k++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for i := b.Lo[0]; i < b.Hi[0]; i++ {
					part[m.ElemID(i, j, k)] = rank
				}
			}
		}
	}
	for rank := 0; rank < px*py*pz; rank++ {
		lb, err := NewLocalFromBlock(m, px, py, pz, rank)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := NewLocalFromParts(m, part, rank)
		if err != nil {
			t.Fatal(err)
		}
		if len(lb.Elems) != len(lp.Elems) {
			t.Fatalf("rank %d: %d vs %d elements", rank, len(lb.Elems), len(lp.Elems))
		}
		if len(lb.VertGlobal) != len(lp.VertGlobal) {
			t.Fatalf("rank %d: %d vs %d vertices", rank, len(lb.VertGlobal), len(lp.VertGlobal))
		}
		// Note: ownership rules differ (higher-block vs lowest-rank), so only
		// the vertex sets are compared, not the owned counts.
		for i := range lb.VertGlobal {
			setB := map[int]bool{}
			for _, v := range lb.VertGlobal {
				setB[v] = true
			}
			if !setB[lp.VertGlobal[i]] {
				t.Fatalf("rank %d vertex sets differ", rank)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
