package spot

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMarketDeterministic(t *testing.T) {
	a, b := NewMarket(5, 2.40), NewMarket(5, 2.40)
	for i := 0; i < 100; i++ {
		a.Tick()
		b.Tick()
		if a.Price() != b.Price() {
			t.Fatal("market not deterministic for equal seeds")
		}
	}
}

func TestPriceStaysBounded(t *testing.T) {
	m := NewMarket(11, 2.40)
	for i := 0; i < 2000; i++ {
		m.Tick()
		if m.Price() < m.Floor || m.Price() > m.OnDemand*1.5 {
			t.Fatalf("price %v escaped bounds at tick %d", m.Price(), i)
		}
	}
}

func TestPriceHoversNearObservedSpot(t *testing.T) {
	// Long-run average must land near the study's observed 54¢ (22.5% of
	// $2.40).
	m := NewMarket(3, 2.40)
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		m.Tick()
		sum += m.Price()
	}
	avg := sum / n
	if avg < 0.40 || avg > 0.80 {
		t.Fatalf("long-run spot average %v, want near 0.54", avg)
	}
}

func TestAcquireOnDemand(t *testing.T) {
	m := NewMarket(1, 2.40)
	a, err := m.AcquireOnDemand(63)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != 63 || a.Groups != 1 || a.SpotCount() != 0 {
		t.Fatalf("bad on-demand assembly: %d nodes, %d groups, %d spot",
			len(a.Nodes), a.Groups, a.SpotCount())
	}
	if b := a.BlendedNodeHour(); b < 2.40-1e-9 || b > 2.40+1e-9 {
		t.Fatalf("blended price %v", b)
	}
	for _, g := range a.GroupOfNode() {
		if g != 0 {
			t.Fatal("on-demand fleet must stay in one placement group")
		}
	}
}

// The paper never assembled 63 spot hosts: a large mix request must always
// contain on-demand top-up, while still being much cheaper than full price.
func TestAcquireMixAlwaysMixed(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		m := NewMarket(seed, 2.40)
		a, err := m.AcquireMix(63, 1.00, 4, 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Nodes) != 63 {
			t.Fatalf("seed %d: fleet size %d", seed, len(a.Nodes))
		}
		if a.SpotCount() == 63 {
			t.Fatalf("seed %d: acquired a full spot fleet, which the study never achieved", seed)
		}
		if a.SpotCount() == 0 {
			t.Fatalf("seed %d: no spot instances at a generous bid", seed)
		}
		if a.OnDemandCount()+a.SpotCount() != 63 {
			t.Fatalf("seed %d: counts inconsistent", seed)
		}
		if b := a.BlendedNodeHour(); b >= 2.40 || b <= 0 {
			t.Fatalf("seed %d: blended price %v", seed, b)
		}
	}
}

func TestAcquireMixSpreadsGroups(t *testing.T) {
	m := NewMarket(9, 2.40)
	a, err := m.AcquireMix(63, 1.00, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, g := range a.GroupOfNode() {
		if g < 0 || g >= 4 {
			t.Fatalf("group %d out of range", g)
		}
		seen[g]++
	}
	if len(seen) != 4 {
		t.Fatalf("only %d groups used", len(seen))
	}
}

func TestLowBidGetsNoSpot(t *testing.T) {
	m := NewMarket(2, 2.40)
	a, err := m.AcquireMix(10, 0.01, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.SpotCount() != 0 {
		t.Fatalf("bid below floor bought %d spot nodes", a.SpotCount())
	}
	if len(a.Nodes) != 10 {
		t.Fatalf("fleet size %d", len(a.Nodes))
	}
}

func TestAcquireValidation(t *testing.T) {
	m := NewMarket(1, 2.40)
	if _, err := m.AcquireOnDemand(0); err == nil {
		t.Error("0-node fleet accepted")
	}
	if _, err := m.AcquireMix(0, 1, 4, 4); err == nil {
		t.Error("0-node mix accepted")
	}
}

func TestEstimateSpotCost(t *testing.T) {
	// Table II row 1000: 148.98 s × 63 × $0.54 / 3600 = $1.4079.
	got := EstimateSpotCost(148.98, 63, 0.54)
	if got < 1.40 || got > 1.41 {
		t.Fatalf("estimate %v, want ≈1.4079", got)
	}
}

// Property: assemblies are always exactly the requested size with prices
// between floor and on-demand.
func TestAcquireMixProperty(t *testing.T) {
	f := func(seed uint64, wantRaw, groupsRaw uint8) bool {
		want := int(wantRaw%100) + 1
		groups := int(groupsRaw%6) + 1
		m := NewMarket(seed, 2.40)
		a, err := m.AcquireMix(want, 1.0, groups, 5)
		if err != nil || len(a.Nodes) != want {
			return false
		}
		for _, n := range a.Nodes {
			if n.PricePerHour <= 0 || n.PricePerHour > 2.40*1.5 {
				return false
			}
			if n.Group < 0 || n.Group >= groups {
				return false
			}
			if !n.Spot && n.PricePerHour != 2.40 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTickRevokeDeterministic: preemption notices are identical for equal
// seeds — the acceptance criterion for seeded fault runs.
func TestTickRevokeDeterministic(t *testing.T) {
	build := func(seed uint64) (*Market, *Assembly) {
		m := NewMarket(seed, 2.40)
		a, err := m.AcquireMix(16, 0.80, 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		return m, a
	}
	m1, a1 := build(17)
	m2, a2 := build(17)
	const bid = 0.60
	for epoch := 0; epoch < 200; epoch++ {
		p1 := m1.TickRevoke(a1, bid)
		p2 := m2.TickRevoke(a2, bid)
		if len(p1) != len(p2) {
			t.Fatalf("epoch %d: %d vs %d notices", epoch, len(p1), len(p2))
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("epoch %d notice %d: %+v vs %+v", epoch, i, p1[i], p2[i])
			}
		}
	}
	if a1.RevokedCount() != a2.RevokedCount() {
		t.Fatalf("revoked counts differ: %d vs %d", a1.RevokedCount(), a2.RevokedCount())
	}
}

// TestTickRevokeSemantics: only spot instances are noticed, each at most
// once, only when the price clears the bid, and the instance keeps
// running until exactly NoticeLeadS of market time after its notice.
func TestTickRevokeSemantics(t *testing.T) {
	m := NewMarket(23, 2.40)
	a, err := m.AcquireMix(16, 0.80, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.SpotCount() == 0 {
		t.Skip("market filled nothing at this seed; pick another")
	}
	seen := map[int]bool{}
	reclaimAt := map[int]float64{}
	var notices int
	for epoch := 0; epoch < 500; epoch++ {
		for _, p := range m.TickRevoke(a, 0.60) {
			if m.Price() <= 0.60 {
				t.Fatalf("notice issued while price %v under bid", m.Price())
			}
			nd := a.Nodes[p.Node]
			if !nd.Spot {
				t.Fatalf("on-demand node %d noticed", p.Node)
			}
			if seen[p.Node] {
				t.Fatalf("node %d noticed twice", p.Node)
			}
			if p.Price != m.Price() {
				t.Fatalf("notice price %v != clearing price %v", p.Price, m.Price())
			}
			if p.NoticeAt != m.Now() || !nd.Noticed || nd.NoticeAt != p.NoticeAt {
				t.Fatalf("notice time %v not stamped at market now %v", p.NoticeAt, m.Now())
			}
			if p.ReclaimAt != p.NoticeAt+NoticeLeadS {
				t.Fatalf("reclaim at %v, want notice %v + lead %v", p.ReclaimAt, p.NoticeAt, NoticeLeadS)
			}
			if nd.Revoked {
				t.Fatalf("node %d reclaimed at notice time — no two-minute lead", p.Node)
			}
			seen[p.Node] = true
			reclaimAt[p.Node] = p.ReclaimAt
			notices++
		}
		for i, nd := range a.Nodes {
			if nd.Revoked && m.Now() < reclaimAt[i] {
				t.Fatalf("node %d reclaimed at t=%v before its lead ran out at %v",
					i, m.Now(), reclaimAt[i])
			}
		}
	}
	if notices == 0 {
		t.Fatal("500 epochs above-bid spikes produced no notices")
	}
	// Let outstanding leads run out with an unbeatable bid: no new notices
	// may be issued, and every noticed instance must end up reclaimed.
	for i := 0; i < int(NoticeLeadS/m.EpochS)+2; i++ {
		if extra := m.TickRevoke(a, 1e9); len(extra) != 0 {
			t.Fatalf("notice issued against an unbeatable bid: %+v", extra)
		}
	}
	if got := a.RevokedCount(); got != notices {
		t.Fatalf("RevokedCount %d != %d notices after leads elapsed", got, notices)
	}
	if a.ActiveCount()+a.RevokedCount() != len(a.Nodes) {
		t.Fatal("active + revoked != fleet size")
	}
}

// TestAcquireMixExhaustionTable pins the fallback ladder AcquireMix walks
// when the spot market cannot fill a request: top up from the on-demand
// pool, return a partial assembly wrapping ErrExhausted when that pool is
// capped and runs dry, and — because the market keeps ticking across
// calls — fill from spot on a later retry.
func TestAcquireMixExhaustionTable(t *testing.T) {
	cases := []struct {
		name      string
		odSupply  int // math.MinInt32 means "leave unlimited default"
		bid       float64
		n         int
		wantNodes int
		wantSpot  int
		exhausted bool
	}{
		{
			// Bid below any clearing price: spot never fills, the
			// uncapped on-demand pool absorbs the whole request.
			name: "spot-dry-on-demand-top-up", odSupply: -1 << 30,
			bid: 1e-9, n: 4, wantNodes: 4, wantSpot: 0, exhausted: false,
		},
		{
			// Capped pool smaller than the request: partial assembly
			// plus a retryable ErrExhausted.
			name: "both-exhausted-partial", odSupply: 2,
			bid: 1e-9, n: 5, wantNodes: 2, wantSpot: 0, exhausted: true,
		},
		{
			// Negative caps clamp to zero supply: nothing to top up
			// with, the assembly comes back empty.
			name: "negative-cap-clamps-to-none", odSupply: -3,
			bid: 1e-9, n: 3, wantNodes: 0, wantSpot: 0, exhausted: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMarket(7, 2.40)
			if tc.odSupply != -1<<30 {
				m.LimitOnDemand(tc.odSupply)
			}
			a, err := m.AcquireMix(tc.n, tc.bid, 1, 3)
			if tc.exhausted != errors.Is(err, ErrExhausted) {
				t.Fatalf("errors.Is(err, ErrExhausted) = %v, want %v (err %v)",
					!tc.exhausted, tc.exhausted, err)
			}
			if got := len(a.Nodes); got != tc.wantNodes {
				t.Fatalf("assembly holds %d node(s), want %d", got, tc.wantNodes)
			}
			if got := a.SpotCount(); got != tc.wantSpot {
				t.Fatalf("assembly holds %d spot node(s), want %d", got, tc.wantSpot)
			}
			if got := len(a.Nodes) - a.SpotCount(); got != tc.wantNodes-tc.wantSpot {
				t.Fatalf("assembly holds %d on-demand node(s), want %d",
					got, tc.wantNodes-tc.wantSpot)
			}
		})
	}
}

// TestAcquireMixRetryLaterSucceeds shows exhaustion is retryable, not
// terminal: with the on-demand pool emptied, a bid the market rejects at
// first clears on a later call because the market keeps ticking between
// calls. Seed 2 exhausts the first AcquireMix and fills the second from
// spot; equal seeds reproduce the same sequence.
func TestAcquireMixRetryLaterSucceeds(t *testing.T) {
	m := NewMarket(2, 2.40)
	m.LimitOnDemand(0)
	a, err := m.AcquireMix(1, 0.50, 1, 3)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("first call: err %v, want ErrExhausted", err)
	}
	if len(a.Nodes) != 0 {
		t.Fatalf("first call filled %d node(s) below the floor", len(a.Nodes))
	}
	a, err = m.AcquireMix(1, 0.50, 1, 3)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if len(a.Nodes) != 1 || a.SpotCount() != 1 {
		t.Fatalf("retry assembled %d node(s), %d spot; want 1 spot instance",
			len(a.Nodes), a.SpotCount())
	}
}
