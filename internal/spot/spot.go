// Package spot simulates the Amazon EC2 spot market of §VII-B: instances
// sold at a fluctuating bid price (observed at 54¢ against the $2.40
// on-demand rate during the study), with "unpredictable" availability —
// "we never succeeded in establishing a full 63-host configuration of spot
// request instances" and "were compelled to add regularly-priced hosts to
// spot-request hosts to obtain the size configuration needed".
//
// The price follows a deterministic seeded mean-reverting process with
// occasional demand spikes; fulfillment per request round is capped by the
// market's available capacity, so large assemblies always come out mixed.
package spot

import (
	"errors"
	"fmt"

	"heterohpc/internal/obs"
	"heterohpc/internal/stats"
)

// ErrExhausted reports that an acquisition could not be filled: the spot
// rounds cleared nothing (price above bid, or capacity gone) and the
// on-demand supply cap — when one is set — left no instances to top up
// with. AcquireMix returns it wrapped, alongside the partial assembly, so
// callers can treat exhaustion as retryable: the market keeps ticking, and
// a later attempt may clear.
var ErrExhausted = errors.New("spot: market exhausted")

// Market is a seeded spot market for one instance type.
type Market struct {
	// OnDemand is the fixed on-demand price per instance-hour.
	OnDemand float64
	// Mean is the long-run spot price the process reverts to.
	Mean float64
	// Floor is the minimum clearing price.
	Floor float64
	// EpochS is the virtual duration of one market epoch (one Tick) in
	// seconds; it positions interruption notices and reclaims on the
	// market's virtual clock (default 60, so the two-minute notice lead
	// spans two epochs).
	EpochS float64

	price     float64
	rng       *stats.RNG
	epoch     int // Ticks elapsed; epoch*EpochS is the market's clock
	capacity  int // spot instances grantable this epoch
	granted   int // spot instances already granted to this customer
	maxSupply int // hard cap on total spot grants (below the study's 63)
	odLeft    int // on-demand instances left to sell; -1 means unlimited
	rec       *obs.Recorder
}

// LimitOnDemand caps the market's remaining on-demand supply at n
// instances (negative values clamp to zero). The default market is
// unlimited — the paper could always "add regularly-priced hosts" — but a
// capped market makes AcquireMix exhaustion reachable, modelling the
// capacity errors real regions return under pressure.
func (m *Market) LimitOnDemand(n int) {
	if n < 0 {
		n = 0
	}
	m.odLeft = n
}

// Observe journals every subsequent price tick and interruption notice to
// run's global recorder, stamped with the market's virtual clock. A nil run
// detaches the observer.
func (m *Market) Observe(run *obs.Run) { m.rec = run.Global() }

// NewMarket creates a market with the study's observed prices: on-demand
// onDemand, long-run spot around 22.5% of it (0.54/2.40).
func NewMarket(seed uint64, onDemand float64) *Market {
	m := &Market{
		OnDemand:  onDemand,
		Mean:      onDemand * 0.225,
		Floor:     onDemand * 0.10,
		EpochS:    60,
		rng:       stats.NewRNG(seed),
		maxSupply: 48, // fewer spot instances than the 63 the study needed
		odLeft:    -1, // on-demand top-up is unlimited unless capped
	}
	m.price = m.Mean
	m.capacity = m.maxSupply
	return m
}

// Price returns the current spot price per instance-hour.
func (m *Market) Price() float64 { return m.price }

// Now returns the market's virtual clock: seconds of market time elapsed
// over all Ticks.
func (m *Market) Now() float64 { return float64(m.epoch) * m.EpochS }

// Tick advances the market one epoch: the price mean-reverts with noise and
// occasionally spikes; supply is refreshed to a random fraction of maximum.
func (m *Market) Tick() {
	m.epoch++
	// Ornstein–Uhlenbeck-flavoured update.
	m.price += 0.3*(m.Mean-m.price) + m.rng.Normal(0, 0.04*m.Mean)
	if m.rng.Float64() < 0.05 { // demand spike
		m.price += m.rng.Range(0.5, 2) * m.Mean
	}
	if m.price < m.Floor {
		m.price = m.Floor
	}
	if m.price > m.OnDemand*1.5 {
		m.price = m.OnDemand * 1.5
	}
	// Each epoch only a fraction of the remaining supply clears; the total
	// ever granted stays below maxSupply, reproducing "we never succeeded in
	// establishing a full 63-host configuration of spot request instances".
	m.capacity = int(float64(m.maxSupply-m.granted) * m.rng.Range(0.2, 0.7))
	m.rec.SpotTick(m.Now(), m.price)
}

// Node is one acquired instance.
type Node struct {
	// Spot is true for spot-priced instances.
	Spot bool
	// PricePerHour is the rate this node bills at.
	PricePerHour float64
	// Group is the placement group the node landed in.
	Group int
	// Noticed is true once the market has issued an interruption notice
	// for this spot instance; NoticeAt is the market time (Market.Now) it
	// was issued. The instance keeps running until the NoticeLeadS lead
	// elapses.
	Noticed  bool
	NoticeAt float64
	// Revoked is true once the market has actually reclaimed this spot
	// instance, NoticeLeadS after its notice (see Market.TickRevoke).
	Revoked bool
}

// Assembly is the result of acquiring a fleet.
type Assembly struct {
	Nodes []Node
	// Groups is the number of distinct placement groups used.
	Groups int
	// Rounds is how many market epochs the acquisition took.
	Rounds int
}

// SpotCount returns the number of spot instances in the assembly.
func (a *Assembly) SpotCount() int {
	n := 0
	for _, nd := range a.Nodes {
		if nd.Spot {
			n++
		}
	}
	return n
}

// OnDemandCount returns the number of on-demand instances.
func (a *Assembly) OnDemandCount() int { return len(a.Nodes) - a.SpotCount() }

// ActiveCount returns the number of instances not yet reclaimed by the
// market.
func (a *Assembly) ActiveCount() int {
	n := 0
	for _, nd := range a.Nodes {
		if !nd.Revoked {
			n++
		}
	}
	return n
}

// RevokedCount returns the number of reclaimed spot instances.
func (a *Assembly) RevokedCount() int { return len(a.Nodes) - a.ActiveCount() }

// BlendedNodeHour returns the average per-instance-hour price of the fleet.
func (a *Assembly) BlendedNodeHour() float64 {
	if len(a.Nodes) == 0 {
		return 0
	}
	var sum float64
	for _, nd := range a.Nodes {
		sum += nd.PricePerHour
	}
	return sum / float64(len(a.Nodes))
}

// GroupOfNode returns the per-node placement-group assignment.
func (a *Assembly) GroupOfNode() []int {
	gs := make([]int, len(a.Nodes))
	for i, nd := range a.Nodes {
		gs[i] = nd.Group
	}
	return gs
}

// AcquireOnDemand returns a fully on-demand fleet in a single placement
// group — Table II's "full" configuration.
func (m *Market) AcquireOnDemand(want int) (*Assembly, error) {
	if want < 1 {
		return nil, fmt.Errorf("spot: fleet of %d requested", want)
	}
	a := &Assembly{Groups: 1, Rounds: 1}
	for i := 0; i < want; i++ {
		a.Nodes = append(a.Nodes, Node{PricePerHour: m.OnDemand, Group: 0})
	}
	return a, nil
}

// AcquireMix requests want instances with spot bids up to bid, spreading
// acquisitions across groups placement groups and topping up with on-demand
// instances when the market cannot fill the request within maxRounds —
// Table II's "mix" configuration.
//
// When the on-demand supply has been capped (LimitOnDemand) and runs out
// before the request is filled, AcquireMix returns the partial assembly
// together with an error wrapping ErrExhausted. The market state keeps
// advancing across calls, so retrying later (with backoff) can succeed —
// exhaustion is a retryable condition, not a terminal one.
func (m *Market) AcquireMix(want int, bid float64, groups, maxRounds int) (*Assembly, error) {
	if want < 1 {
		return nil, fmt.Errorf("spot: fleet of %d requested", want)
	}
	if groups < 1 {
		groups = 1
	}
	if maxRounds < 1 {
		maxRounds = 1
	}
	a := &Assembly{Groups: groups}
	place := func(n Node) {
		n.Group = len(a.Nodes) % groups
		a.Nodes = append(a.Nodes, n)
	}
	for round := 0; round < maxRounds && len(a.Nodes) < want; round++ {
		a.Rounds++
		m.Tick()
		if m.price <= bid {
			// Fulfilled at the clearing price, limited by market capacity.
			grant := want - len(a.Nodes)
			if grant > m.capacity {
				grant = m.capacity
			}
			for i := 0; i < grant; i++ {
				place(Node{Spot: true, PricePerHour: m.price})
			}
			m.capacity -= grant
			m.granted += grant
		}
	}
	// Top up with regularly-priced hosts (the paper's forced fallback),
	// bounded by the on-demand supply cap when one is set.
	for len(a.Nodes) < want {
		if m.odLeft == 0 {
			return a, fmt.Errorf("spot: filled %d of %d instance(s) in %d round(s), on-demand supply gone: %w",
				len(a.Nodes), want, a.Rounds, ErrExhausted)
		}
		if m.odLeft > 0 {
			m.odLeft--
		}
		place(Node{PricePerHour: m.OnDemand})
	}
	return a, nil
}

// NoticeLeadS is the two-minute interruption notice EC2 issues before
// reclaiming a spot instance, in virtual seconds.
const NoticeLeadS = 120.0

// Preemption is one spot interruption notice: the market reclaims the
// instance NoticeLeadS virtual seconds after the notice is issued.
type Preemption struct {
	// Node indexes the noticed instance in the assembly's Nodes slice.
	Node int
	// Price is the clearing price that outbid the instance.
	Price float64
	// NoticeAt is the market time (Market.Now) the notice was issued;
	// ReclaimAt (= NoticeAt + NoticeLeadS) is when the instance is
	// actually reclaimed, so callers can model the two-minute lead.
	NoticeAt, ReclaimAt float64
}

// TickRevoke advances the market one epoch (like Tick), reclaims
// instances whose notice lead has elapsed, and returns fresh interruption
// notices for active spot instances in a that the new clearing price
// outbids. A noticed instance keeps running for NoticeLeadS seconds of
// market time and is only then marked Revoked — the EC2 two-minute lead.
// Notices are per-pool, not all-or-nothing: each outbid instance is
// noticed with probability ½ per epoch from the market's seeded stream,
// so equal seeds give equal preemption sequences while a single price
// spike rarely takes the whole fleet — matching the paper's experience
// that spot assemblies shrink "unpredictably" rather than vanish. Noticed
// nodes are marked in place and never notice twice.
func (m *Market) TickRevoke(a *Assembly, bid float64) []Preemption {
	m.Tick()
	if a == nil {
		return nil
	}
	now := m.Now()
	// Reclaim instances whose two-minute lead has run out — regardless of
	// where the price sits this epoch; the notice was already issued.
	for i := range a.Nodes {
		nd := &a.Nodes[i]
		if nd.Noticed && !nd.Revoked && now >= nd.NoticeAt+NoticeLeadS {
			nd.Revoked = true
		}
	}
	if m.price <= bid {
		return nil
	}
	var out []Preemption
	for i := range a.Nodes {
		nd := &a.Nodes[i]
		if !nd.Spot || nd.Noticed {
			continue
		}
		if m.rng.Float64() < 0.5 {
			nd.Noticed = true
			nd.NoticeAt = now
			m.rec.Preemption(now, i, m.price, now+NoticeLeadS)
			out = append(out, Preemption{
				Node: i, Price: m.price,
				NoticeAt: now, ReclaimAt: now + NoticeLeadS,
			})
		}
	}
	return out
}

// EstimateSpotCost prices a per-iteration duration at the pure spot rate —
// the "est. cost" column of Table II (the paper prices the mix
// configuration as if all hosts were spot, since the on-demand top-up is an
// artefact of market availability).
func EstimateSpotCost(iterSeconds float64, nodes int, spotPerHour float64) float64 {
	return iterSeconds / 3600 * float64(nodes) * spotPerHour
}
