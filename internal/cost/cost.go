// Package cost implements the billing models of §VII-D and the
// per-iteration cost computation behind Table II and Figures 6–7.
//
// Two billing granularities exist among the four platforms: flat per-core
// rates (puma 2.3¢, ellipse 5¢, lagrange 19.19¢ per core-hour) and
// whole-node billing (EC2 charges $2.40 per cc2.8xlarge instance-hour
// regardless of how many of its 16 cores the job uses, "this price
// increases if not all cores are utilized"). The "ec2 mix" curves use the
// observed spot price instead of the on-demand price.
package cost

import (
	"fmt"

	"heterohpc/internal/platform"
)

// Billing prices jobs on one platform.
type Billing struct {
	// Name labels report columns.
	Name string
	// PerCoreHour is the flat core rate in dollars (0 when node-billed).
	PerCoreHour float64
	// PerNodeHour is the whole-node rate in dollars (0 when core-billed).
	PerNodeHour float64
	// CoresPerNode is needed for whole-node billing.
	CoresPerNode int
	// WholeNode selects node-granular billing.
	WholeNode bool
}

// ForPlatform derives the on-demand billing model of p.
func ForPlatform(p *platform.Platform) Billing {
	if p.BillWholeNodes {
		return Billing{
			Name:         p.Name,
			PerNodeHour:  p.CostPerNodeHour,
			CoresPerNode: p.CoresPerNode(),
			WholeNode:    true,
		}
	}
	return Billing{Name: p.Name, PerCoreHour: p.CostPerCoreHour}
}

// SpotForPlatform derives the spot-price billing model of p (EC2 "mix"),
// or an error for platforms without a spot market.
func SpotForPlatform(p *platform.Platform) (Billing, error) {
	if p.SpotPerNodeHour == 0 {
		return Billing{}, fmt.Errorf("cost: %s has no spot market", p.Name)
	}
	return Billing{
		Name:         p.Name + " mix",
		PerNodeHour:  p.SpotPerNodeHour,
		CoresPerNode: p.CoresPerNode(),
		WholeNode:    true,
	}, nil
}

// JobCost returns the dollars charged for running ranks ranks for seconds
// seconds. Whole-node platforms charge every occupied node fully; per-core
// platforms charge exactly the cores used (the paper's flat rates).
func (b Billing) JobCost(seconds float64, ranks int) float64 {
	if seconds < 0 || ranks < 1 {
		return 0
	}
	hours := seconds / 3600
	if b.WholeNode {
		nodes := (ranks + b.CoresPerNode - 1) / b.CoresPerNode
		return float64(nodes) * b.PerNodeHour * hours
	}
	return float64(ranks) * b.PerCoreHour * hours
}

// EffectiveCoreRate returns the dollars per core-hour a job of ranks ranks
// actually pays (higher than nominal when whole nodes are underfilled —
// the effect visible in the first points of Figures 6 and 7).
func (b Billing) EffectiveCoreRate(ranks int) float64 {
	return b.JobCost(3600, ranks) / float64(ranks)
}

// PerIteration returns the cost of one solver iteration lasting iterSeconds
// on ranks ranks — the quantity plotted in Figures 6 and 7 and tabulated in
// Table II.
func (b Billing) PerIteration(iterSeconds float64, ranks int) float64 {
	return b.JobCost(iterSeconds, ranks)
}
