package cost

import (
	"fmt"
	"sort"
	"strings"
)

// LedgerEntry records one executed job for accounting.
type LedgerEntry struct {
	Platform    string
	App         string
	Ranks       int
	Nodes       int
	RunSeconds  float64
	WaitSeconds float64
	Dollars     float64
}

// Ledger accumulates job records and produces the "overall expense factor"
// view the paper's abstract promises: dollars, delivered core-hours, and
// the waiting overhead per platform.
type Ledger struct {
	entries []LedgerEntry
}

// Add records a job.
func (l *Ledger) Add(e LedgerEntry) {
	l.entries = append(l.entries, e)
}

// Entries returns a copy of the recorded jobs.
func (l *Ledger) Entries() []LedgerEntry {
	return append([]LedgerEntry(nil), l.entries...)
}

// PlatformSummary aggregates one platform's usage.
type PlatformSummary struct {
	Platform string
	Jobs     int
	// CoreHours is the delivered compute (ranks × run time).
	CoreHours float64
	// Dollars is the total spend.
	Dollars float64
	// DollarsPerCoreHour is the effective achieved rate.
	DollarsPerCoreHour float64
	// WaitHours is the total queue wait.
	WaitHours float64
	// WaitOverhead is wait time relative to run time (the availability
	// penalty: 0 means instant starts; 2 means jobs waited twice as long as
	// they ran).
	WaitOverhead float64
}

// Summarize aggregates the ledger per platform, sorted by platform name.
func (l *Ledger) Summarize() []PlatformSummary {
	agg := map[string]*PlatformSummary{}
	runHours := map[string]float64{}
	for _, e := range l.entries {
		s, ok := agg[e.Platform]
		if !ok {
			s = &PlatformSummary{Platform: e.Platform}
			agg[e.Platform] = s
		}
		s.Jobs++
		s.CoreHours += float64(e.Ranks) * e.RunSeconds / 3600
		s.Dollars += e.Dollars
		s.WaitHours += e.WaitSeconds / 3600
		runHours[e.Platform] += e.RunSeconds / 3600
	}
	out := make([]PlatformSummary, 0, len(agg))
	for name, s := range agg {
		if s.CoreHours > 0 {
			s.DollarsPerCoreHour = s.Dollars / s.CoreHours
		}
		if rh := runHours[name]; rh > 0 {
			s.WaitOverhead = s.WaitHours / rh
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Platform < out[b].Platform })
	return out
}

// Report renders the summary as a text table.
func (l *Ledger) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %5s %12s %10s %12s %12s\n",
		"platform", "jobs", "core-hours", "spend[$]", "$/core-h", "wait/run")
	for _, s := range l.Summarize() {
		fmt.Fprintf(&b, "%-10s %5d %12.3f %10.4f %12.4f %11.1fx\n",
			s.Platform, s.Jobs, s.CoreHours, s.Dollars, s.DollarsPerCoreHour, s.WaitOverhead)
	}
	return b.String()
}
