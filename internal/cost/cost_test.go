package cost

import (
	"math"
	"strings"
	"testing"

	"heterohpc/internal/platform"
)

func get(t *testing.T, name string) *platform.Platform {
	t.Helper()
	p, err := platform.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Table II reproduces exactly from the billing formula: cost = time ×
// instances × rate / 3600.
func TestTableIICostFormula(t *testing.T) {
	ec2 := get(t, "ec2")
	full := ForPlatform(ec2)
	spotB, err := SpotForPlatform(ec2)
	if err != nil {
		t.Fatal(err)
	}
	// Rows of Table II: ranks, instances, full time/cost, mix time/cost.
	rows := []struct {
		ranks        int
		fullT, fullC float64
		mixT, mixC   float64
	}{
		{1, 4.83, 0.0032, 4.77, 0.0007},
		{8, 5.83, 0.0039, 5.78, 0.0009},
		{27, 7.28, 0.0097, 7.58, 0.0023},
		{64, 8.69, 0.0232, 8.82, 0.0053},
		{125, 21.65, 0.1155, 21.24, 0.0255},
		{216, 31.47, 0.2937, 31.47, 0.0661},
		{343, 66.34, 0.9729, 62.57, 0.2065},
		{512, 92.20, 1.9670, 94.52, 0.4537},
		{729, 127.76, 3.9179, 128.10, 0.8839},
		{1000, 162.09, 6.8077, 148.98, 1.4079},
	}
	for _, r := range rows {
		gotFull := full.PerIteration(r.fullT, r.ranks)
		if math.Abs(gotFull-r.fullC) > 0.0105*math.Max(r.fullC, 0.01) {
			t.Errorf("ranks %d: full cost %v, Table II says %v", r.ranks, gotFull, r.fullC)
		}
		gotMix := spotB.PerIteration(r.mixT, r.ranks)
		if math.Abs(gotMix-r.mixC) > 0.02*math.Max(r.mixC, 0.01) {
			t.Errorf("ranks %d: mix cost %v, Table II says %v", r.ranks, gotMix, r.mixC)
		}
	}
}

// §VII-D: EC2 per-core rate is 15¢ for full instances and 3.375¢ for spot,
// rising when cores are left idle.
func TestEffectiveCoreRates(t *testing.T) {
	ec2 := get(t, "ec2")
	full := ForPlatform(ec2)
	if got := full.EffectiveCoreRate(16); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("full 16-core rate %v, want 0.15", got)
	}
	spotB, _ := SpotForPlatform(ec2)
	if got := spotB.EffectiveCoreRate(16); math.Abs(got-0.03375) > 1e-9 {
		t.Errorf("spot 16-core rate %v, want 0.03375", got)
	}
	// One rank still pays the whole node: 2.40/core-hour.
	if got := full.EffectiveCoreRate(1); math.Abs(got-2.40) > 1e-9 {
		t.Errorf("1-core rate %v, want 2.40", got)
	}
	// Flat-rate platforms never inflate.
	puma := ForPlatform(get(t, "puma"))
	if got := puma.EffectiveCoreRate(1); math.Abs(got-0.023) > 1e-12 {
		t.Errorf("puma rate %v", got)
	}
	if got := puma.EffectiveCoreRate(100); math.Abs(got-0.023) > 1e-12 {
		t.Errorf("puma rate at 100 ranks %v", got)
	}
}

func TestJobCostEdgeCases(t *testing.T) {
	b := Billing{PerCoreHour: 1}
	if b.JobCost(-1, 4) != 0 || b.JobCost(10, 0) != 0 {
		t.Error("invalid inputs should cost 0")
	}
	if got := b.JobCost(1800, 2); got != 1 {
		t.Errorf("half hour on 2 cores at $1 = %v, want 1", got)
	}
}

func TestSpotForPlatformErrors(t *testing.T) {
	if _, err := SpotForPlatform(get(t, "puma")); err == nil {
		t.Error("puma has no spot market")
	}
}

// Fig. 6/7 crossover precondition: at full nodes, EC2's on-demand per-core
// rate (15¢) must sit between ellipse (5¢) and lagrange (19.19¢), and spot
// (3.375¢) must undercut everything but puma's nominal estimate.
func TestPerCoreRateOrdering(t *testing.T) {
	ec2full := ForPlatform(get(t, "ec2")).EffectiveCoreRate(16)
	ec2spot, _ := SpotForPlatform(get(t, "ec2"))
	spotRate := ec2spot.EffectiveCoreRate(16)
	ellipse := ForPlatform(get(t, "ellipse")).EffectiveCoreRate(16)
	lagrange := ForPlatform(get(t, "lagrange")).EffectiveCoreRate(16)
	puma := ForPlatform(get(t, "puma")).EffectiveCoreRate(16)
	if !(ellipse < ec2full && ec2full < lagrange) {
		t.Errorf("ordering broken: ellipse %v, ec2 %v, lagrange %v", ellipse, ec2full, lagrange)
	}
	if !(spotRate < ellipse && spotRate > puma) {
		t.Errorf("spot %v should undercut ellipse %v but not puma %v", spotRate, ellipse, puma)
	}
}

func TestLedgerSummarize(t *testing.T) {
	var l Ledger
	l.Add(LedgerEntry{Platform: "puma", App: "rd", Ranks: 8, Nodes: 2,
		RunSeconds: 3600, WaitSeconds: 7200, Dollars: 8 * 0.023})
	l.Add(LedgerEntry{Platform: "puma", App: "ns", Ranks: 4, Nodes: 1,
		RunSeconds: 1800, WaitSeconds: 1800, Dollars: 4 * 0.023 / 2})
	l.Add(LedgerEntry{Platform: "ec2", App: "rd", Ranks: 16, Nodes: 1,
		RunSeconds: 3600, WaitSeconds: 120, Dollars: 2.40})
	sums := l.Summarize()
	if len(sums) != 2 {
		t.Fatalf("got %d summaries", len(sums))
	}
	// Sorted by name: ec2 first.
	ec2, puma := sums[0], sums[1]
	if ec2.Platform != "ec2" || puma.Platform != "puma" {
		t.Fatalf("order wrong: %v %v", ec2.Platform, puma.Platform)
	}
	if ec2.CoreHours != 16 || math.Abs(ec2.DollarsPerCoreHour-0.15) > 1e-12 {
		t.Errorf("ec2 summary %+v", ec2)
	}
	if puma.Jobs != 2 || math.Abs(puma.CoreHours-10) > 1e-12 {
		t.Errorf("puma summary %+v", puma)
	}
	// puma waited (2+0.5)h over (1+0.5)h of running.
	if math.Abs(puma.WaitOverhead-2.5/1.5) > 1e-12 {
		t.Errorf("puma wait overhead %v", puma.WaitOverhead)
	}
	if ec2.WaitOverhead >= puma.WaitOverhead {
		t.Error("the cloud should have the lower wait overhead")
	}
	rep := l.Report()
	for _, want := range []string{"puma", "ec2", "$/core-h", "wait/run"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if len(l.Entries()) != 3 {
		t.Errorf("entries: %d", len(l.Entries()))
	}
}

func TestLedgerEmpty(t *testing.T) {
	var l Ledger
	if len(l.Summarize()) != 0 {
		t.Fatal("empty ledger has summaries")
	}
	if !strings.Contains(l.Report(), "platform") {
		t.Fatal("empty report missing header")
	}
}
