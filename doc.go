// Package heterohpc reproduces "Experiences with Target-Platform
// Heterogeneity in Clouds, Grids, and On-Premises Resources" (Slawinski,
// Passerini, Villa, Veneziani, Sunderam; Emory TR-2012-004 / IPPS
// 2012) as a runnable Go system.
//
// The paper benchmarks two production FEM CFD applications — a 3-D
// reaction–diffusion equation and the incompressible Navier–Stokes
// equations on the Ethier–Steinman benchmark — across four heterogeneous
// platforms: an in-house cluster (puma), a fee-for-use university cluster
// (ellipse), a TOP500 grid machine (lagrange) and Amazon EC2 cc2.8xlarge
// assemblies. This library rebuilds the entire stack in Go: structured
// meshes and partitioners (the NetGen/ParMETIS role), distributed sparse
// linear algebra and Krylov solvers with preconditioners (the
// Trilinos/Ifpack role), the two applications themselves (the LifeV role),
// and an in-process message-passing runtime whose virtual clocks are driven
// by calibrated models of the four platforms' CPUs, interconnects,
// schedulers, prices and the EC2 spot market — so that every table and
// figure of the paper's evaluation can be regenerated (see EXPERIMENTS.md).
//
// The numerics are real: both applications verify their solutions against
// exact manufactured solutions on every run. Only wall-clock time on the
// 2012 hardware is virtualised.
//
// Quick start:
//
//	tgt, _ := heterohpc.NewTarget("ec2", 1)
//	app, _ := heterohpc.WeakRD(8, 10, 4) // 8 ranks × 10³ elements, 4 BDF2 steps
//	rep, err := tgt.Run(heterohpc.JobSpec{Ranks: 8, App: app})
//	// rep.Iter has per-phase iteration times; rep.CostPerIter the dollars.
//
// The cmd/heterobench CLI regenerates the paper's tables; the examples/
// directory holds runnable scenario walkthroughs.
package heterohpc
