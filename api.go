package heterohpc

import (
	"heterohpc/internal/bench"
	"heterohpc/internal/core"
	"heterohpc/internal/fault"
	"heterohpc/internal/mp"
	"heterohpc/internal/obs"
	"heterohpc/internal/platform"
)

// Re-exported core types: the minimal surface a downstream user needs to
// run the paper's applications on the platform models.
type (
	// Target is a platform bound to its scheduler and billing.
	Target = core.Target
	// JobSpec describes one job submission.
	JobSpec = core.JobSpec
	// Report is the aggregated outcome of a run.
	Report = core.Report
	// IterStats are the per-iteration phase statistics of a report.
	IterStats = core.IterStats
	// App is a parallel application runnable on a Target.
	App = core.App
	// Platform is a hardware/pricing/capability description.
	Platform = platform.Platform
	// BenchOptions configures the experiment harness.
	BenchOptions = bench.Options
	// BenchSeries is one platform's weak-scaling curve.
	BenchSeries = bench.Series
	// FaultPlan is a seeded schedule of injected failures.
	FaultPlan = fault.Plan
	// FaultEvent is one injected failure (crash, preemption, degrade).
	FaultEvent = fault.Event
	// FaultOptions configures a supervised run under injected faults.
	FaultOptions = bench.FaultOptions
	// RecoveryReport compares a supervised run against its clean baseline.
	RecoveryReport = bench.RecoveryReport
	// ShrinkStats itemises a shrink-and-continue recovery's mechanics.
	ShrinkStats = bench.ShrinkStats
	// RecoveryComparison holds both policies' reports for one fault plan.
	RecoveryComparison = bench.RecoveryComparison
	// ObsRun is an observability sink: a deterministic JSONL journal of
	// typed run events plus a metrics registry, both stamped with virtual
	// time (byte-identical across runs from the same seed). Attach one via
	// BenchOptions.Obs, FaultOptions.Obs or Target.RunObserved, then write
	// it out with WriteJournal/WriteMetrics. A nil *ObsRun is a valid no-op
	// sink — the disabled hot paths stay allocation-free.
	ObsRun = obs.Run
)

// Recovery policies for FaultOptions.Policy.
const (
	// PolicyRestart recovers by restoring a checkpoint and rerunning the
	// full job shape.
	PolicyRestart = bench.PolicyRestart
	// PolicyShrink recovers ULFM-style: survivors agree on the dead,
	// shrink the world, redistribute state from diskless buddy
	// checkpoints, and continue mid-run.
	PolicyShrink = bench.PolicyShrink
	// PolicyMigrate recovers proactively: on a preemption notice the
	// supervisor drains inside the window, evacuates the doomed node's
	// checkpoint shards, provisions replacements (with arbiter coalescing
	// and autoscaler backoff under fault storms — see
	// FaultOptions.StormWave and friends), and resumes at full width.
	PolicyMigrate = bench.PolicyMigrate
)

// ErrRankDead is the typed error every surviving rank observes when a node
// of the job is killed or preempted mid-run.
var ErrRankDead = mp.ErrRankDead

// NewObsRun returns an empty observability sink.
func NewObsRun() *ObsRun { return obs.NewRun() }

// NewTarget builds the named platform's execution target; seed drives its
// deterministic availability (queue wait) stream.
func NewTarget(name string, seed uint64) (*Target, error) {
	return core.NewTarget(name, seed)
}

// Platforms returns the registered platform names.
func Platforms() []string { return platform.Names() }

// GetPlatform returns a platform description by name.
func GetPlatform(name string) (*Platform, error) { return platform.Get(name) }

// WeakRD builds the paper's weak-scaling reaction–diffusion application:
// ranks (a cube number) processes, each loaded with perRankN³ mesh
// elements, running steps BDF2 steps.
func WeakRD(ranks, perRankN, steps int) (App, error) {
	return core.WeakRD(ranks, perRankN, steps)
}

// WeakNS builds the weak-scaling Navier–Stokes (Ethier–Steinman)
// application with the same loading rule.
func WeakNS(ranks, perRankN, steps int) (App, error) {
	return core.WeakNS(ranks, perRankN, steps)
}

// RunWeakScaling executes the Figure 4 (app "rd") or Figure 5 (app "ns")
// experiment on one platform.
func RunWeakScaling(app, platformName string, o BenchOptions) (*BenchSeries, error) {
	return bench.RunWeak(app, platformName, o)
}

// CapabilityTable renders the paper's Table I for the four platforms.
func CapabilityTable() string { return bench.FormatCapabilities() }

// RunSupervised executes one job under a seeded fault plan with the
// checkpoint-restart supervisor: failures are classified, capacity is
// re-provisioned (or the job degrades onto the survivors), and the run
// resumes from the last per-rank checkpoint.
func RunSupervised(o FaultOptions) (*RecoveryReport, error) {
	return bench.RunSupervised(o)
}

// FormatRecovery renders a supervised run's decision log and its
// recovered-vs-clean comparison with the overhead itemised.
func FormatRecovery(rep *RecoveryReport) string { return bench.FormatRecovery(rep) }

// CompareRecovery runs the identical seeded fault plan under both recovery
// policies (checkpoint-restart and shrink-and-continue) so their reports
// differ only by policy.
func CompareRecovery(o FaultOptions) (*RecoveryComparison, error) {
	return bench.CompareRecovery(o)
}

// FormatRecoveryComparison renders the two policies' reports side by side.
func FormatRecoveryComparison(c *RecoveryComparison) string {
	return bench.FormatRecoveryComparison(c)
}
