// Fault tolerance on a spot-heavy EC2 assembly: the paper's experience is
// that spot fleets shrink unpredictably — "we never succeeded in
// establishing a full 63-host configuration of spot request instances".
// This example assembles a mixed spot/on-demand fleet, lets the market
// reclaim spot instances with the two-minute interruption notice
// (spot.TickRevoke), turns the first notices into a deterministic fault
// plan, and runs a Navier–Stokes job through the checkpoint-restart
// supervisor: the job survives two preemptions, re-provisioning
// replacement capacity (spot first, on-demand fallback — the paper's
// "mix") and restoring from the per-rank containers after each loss.
// A third act pits that checkpoint-restart policy against ULFM-style
// shrink-and-continue on the identical fault plan, and a final act throws
// a correlated storm — three simultaneous notices, a cascade, and an
// exhausted market — at the recovery arbiter and elastic autoscaler.
package main

import (
	"fmt"
	"log"

	"heterohpc/internal/bench"
	"heterohpc/internal/fault"
	"heterohpc/internal/platform"
	"heterohpc/internal/spot"
)

func main() {
	p, err := platform.Get("ec2")
	if err != nil {
		log.Fatal(err)
	}

	// Act 1: assemble a spot-heavy fleet and watch the market reclaim it.
	const fleet = 4
	bid := 0.25 * p.CostPerNodeHour
	market := spot.NewMarket(2012, p.CostPerNodeHour)
	asm, err := market.AcquireMix(fleet, bid, 2, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instances: %d spot + %d on-demand (blended $%.3f/node-hour)\n",
		fleet, asm.SpotCount(), asm.OnDemandCount(), asm.BlendedNodeHour())

	var notices []spot.Preemption
	epochs := 0
	for len(notices) < 2 && epochs < 500 {
		epochs++
		notices = append(notices, market.TickRevoke(asm, bid)...)
	}
	if len(notices) < 2 {
		log.Fatalf("market never outbid the fleet in %d epochs", epochs)
	}
	notices = notices[:2]
	for _, n := range notices {
		fmt.Printf("interruption notice: node %d outbid at $%.3f/h at t=%.0fs; reclaim at t=%.0fs (%.0fs lead)\n",
			n.Node, n.Price, n.NoticeAt, n.ReclaimAt, n.ReclaimAt-n.NoticeAt)
	}
	// The noticed instances keep running through the two-minute lead; tick
	// the market until it actually reclaims them.
	for asm.RevokedCount() < 2 && epochs < 600 {
		epochs++
		market.TickRevoke(asm, bid)
	}
	fmt.Printf("fleet now %d active / %d revoked\n\n", asm.ActiveCount(), asm.RevokedCount())

	// Act 2: turn the notices into a fault plan and run supervised. 27
	// ranks span two 16-core EC2 instances, so both preemptions land
	// inside the job's topology; the times fall mid-run in each attempt.
	const ranks, jobNodes = 27, 2
	plan := &fault.Plan{Seed: 2012}
	for i, n := range notices {
		// Seconds into each attempt; late enough that at least one BDF2
		// step has checkpointed, so the recovery restores rather than
		// restarting from scratch.
		at := 4.0 + 1.0*float64(i)
		plan.Events = append(plan.Events, fault.Event{
			Kind: fault.KindPreempt, Node: n.Node % jobNodes,
			At: at, NoticeAt: 0, // a sub-2-minute job: the notice arrives at launch
		})
	}

	rep, err := bench.RunSupervised(bench.FaultOptions{
		App: "ns", Platform: "ec2", Ranks: ranks,
		PerRankN: 4, Steps: 4,
		Seed: 2012,
		Plan: plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Attempts != len(notices)+1 {
		log.Fatalf("expected both preemptions to fire: %d attempts", rep.Attempts)
	}
	fmt.Print(bench.FormatRecovery(rep))
	fmt.Println()

	if rep.Clean.Metrics["vel_max_err"] != rep.Final.Metrics["vel_max_err"] {
		log.Fatal("recovered solution drifted from the clean run")
	}
	fmt.Printf("survived %d preemption(s) in %d attempt(s); the recovered velocity\n",
		len(notices), rep.Attempts)
	fmt.Printf("error matches the uninterrupted run exactly (%.3e).\n\n",
		rep.Final.Metrics["vel_max_err"])

	// Act 3: the same crash under both recovery policies. Restart rolls the
	// whole job back and re-runs it at full width; shrink-and-continue has
	// the survivors agree on the dead, repartitions the mesh over the three
	// remaining nodes, scatters the last mirrored buddy checkpoint, and
	// finishes mid-run — wasting strictly less virtual time. Two ranks per
	// node keeps every rank's buddy off-node, which is what makes the
	// diskless checkpoints survive a whole-node loss.
	cmp, err := bench.CompareRecovery(bench.FaultOptions{
		App: "rd", Platform: "ec2", Ranks: 8, RanksPerNode: 2,
		PerRankN: 4, Steps: 4,
		Seed:    2012,
		Crashes: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatRecoveryComparison(cmp))
	if cmp.Shrink.WastedVirtualS >= cmp.Restart.WastedVirtualS {
		log.Fatal("shrink-and-continue should waste strictly less virtual time than restart")
	}
	fmt.Println()

	// Act 4: a correlated fault storm. One price spike outbids three of the
	// four nodes at once — their notices land inside a single two-minute
	// window — and a cascade reclaims one replacement mid-provisioning,
	// while a dry on-demand pool forces the autoscaler to back off and
	// retry AcquireMix. The recovery arbiter coalesces the wave into ONE
	// recovery point (one drain, one group evacuation, one grow, one
	// restore — never a double-restore) and still finishes at the
	// submitted width, bit-identical to a fault-free run.
	storm, err := bench.RunSupervised(bench.FaultOptions{
		App: "rd", Platform: "ec2", Ranks: 8, RanksPerNode: 2,
		PerRankN: 4, Steps: 4,
		Seed:      12,
		Policy:    bench.PolicyMigrate,
		StormWave: 3, StormCascades: 1,
		OnDemandSupply: -1, // no on-demand top-up: exhaustion is reachable
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatRecovery(storm))
	mg := storm.Migrate
	if storm.FinalRanks != 8 || mg == nil || mg.Coalesced == 0 {
		log.Fatal("the storm wave should coalesce and still recover full width")
	}
	fmt.Printf("\nstorm of %d correlated notices + %d cascade: %d coalesced, %d re-plan(s),\n",
		3, 1, mg.Coalesced, mg.Replans)
	fmt.Printf("%d backoff retry(ies) on the exhausted market — one recovery point, full width.\n",
		mg.ProvisionRetries)
}
