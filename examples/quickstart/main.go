// Quickstart: run the paper's reaction–diffusion test case on 8 ranks of
// the in-house cluster model (puma), verify the solution against the exact
// manufactured solution u = t²(x²+y²+z²), and print the per-phase iteration
// profile and billing — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"heterohpc"
)

func main() {
	// The "home" platform of the paper's application.
	target, err := heterohpc.NewTarget("puma", 1)
	if err != nil {
		log.Fatal(err)
	}

	// 8 MPI ranks, each loaded with 10³ mesh elements, 4 BDF2 steps.
	app, err := heterohpc.WeakRD(8, 10, 4)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := target.Run(heterohpc.JobSpec{Ranks: 8, App: app, SkipSteps: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("platform      : %s (%d ranks on %d nodes)\n", rep.Platform, rep.Ranks, rep.Nodes)
	fmt.Printf("queue wait    : %.0f s (sampled from the PBS queue model)\n", rep.QueueWaitS)
	fmt.Printf("assembly      : %.4f s/iter\n", rep.Iter.AvgAssembly)
	fmt.Printf("preconditioner: %.4f s/iter\n", rep.Iter.AvgPrecond)
	fmt.Printf("solve         : %.4f s/iter\n", rep.Iter.AvgSolve)
	fmt.Printf("max iteration : %.4f s (communication share %.1f%%)\n",
		rep.Iter.MaxTotal, rep.Iter.CommFraction*100)
	fmt.Printf("cost          : $%.6f per iteration at %s billing\n",
		rep.CostPerIter, rep.Platform)
	fmt.Printf("verification  : max |u-u_exact| = %.2e, L2 = %.2e (CG tol 1e-8)\n",
		rep.Metrics["max_err"], rep.Metrics["l2_err"])

	if rep.Metrics["max_err"] > 1e-4 {
		log.Fatal("solution verification failed")
	}
	fmt.Println("OK: solver output matches the exact solution.")
}
