// Provisioning: plan the porting of the LifeV CFD stack (GCC, Open MPI,
// BLAS/LAPACK, Boost, HDF5, ParMETIS, SuiteSparse, Trilinos, LifeV) onto
// each of the four platforms, reproducing the §VI narratives: nothing to do
// on the home cluster, ~8 man-hours of source builds on ellipse and
// lagrange, and about a day on EC2 including the cloud-specific plumbing.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"heterohpc/internal/provision"
)

func main() {
	reg := provision.DefaultRegistry()
	if err := reg.Validate(); err != nil {
		log.Fatal(err)
	}
	for _, name := range provision.PaperPlatforms {
		st, err := provision.PlatformState(name)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := provision.Resolve(reg, st, provision.AppTargets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", name)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		installs := 0
		for _, s := range plan.Steps {
			if s.Method == provision.Preinstalled {
				continue
			}
			installs++
			fmt.Fprintf(w, "  install %s %s\tvia %s\t%.1f h\t%s\n",
				s.Pkg, s.Version, s.Method, s.Hours, s.Note)
		}
		for _, t := range plan.Extra {
			fmt.Fprintf(w, "  task    %s\t\t%.1f h\t%s\n", t.Name, t.Hours, t.Note)
		}
		w.Flush()
		if installs == 0 {
			fmt.Println("  (all dependencies pre-provisioned — the home platform)")
		}
		fmt.Printf("  => %.1f man-hours of preconditioning\n\n", plan.TotalHours)
	}
}
