// Checkpoint-restart: demonstrate the fault-tolerance conditioning the
// paper names for EC2 clusters (§VI-D: "services such as monitoring or
// automatic checkpointing"). The reaction–diffusion solver runs with
// per-step checkpointing to h5lite containers, is "killed" halfway, then
// restored and finished — and the resumed solution matches an
// uninterrupted run bit for bit.
package main

import (
	"bytes"
	"fmt"
	"log"

	"heterohpc/internal/checkpoint"
	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/platform"
	"heterohpc/internal/rd"
)

const (
	ranks      = 8
	totalSteps = 6
	crashAfter = 3
)

func newWorld() *mp.World {
	p, err := platform.Get("ec2")
	if err != nil {
		log.Fatal(err)
	}
	topo, err := mp.BlockTopology(ranks, p.CoresPerNode())
	if err != nil {
		log.Fatal(err)
	}
	fab, err := netmodel.NewFabric(p.Net, topo.NNodes())
	if err != nil {
		log.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, p.Rater)
	if err != nil {
		log.Fatal(err)
	}
	return w
}

func main() {
	m := mesh.NewUnitCube(12)
	cfg := rd.Config{Mesh: m, Grid: [3]int{2, 2, 2}, Steps: totalSteps}

	// Reference: the uninterrupted run.
	reference := make([][]float64, ranks)
	if err := newWorld().Run(func(r *mp.Rank) error {
		res, err := rd.Run(r, cfg)
		if err != nil {
			return err
		}
		reference[r.ID()] = res.Solution
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Run with checkpointing; the job "crashes" after crashAfter steps.
	fmt.Printf("running %d BDF2 steps, checkpointing each; simulating a crash after step %d...\n",
		totalSteps, crashAfter)
	ownedIDs := make([][]int, ranks)
	for rank := 0; rank < ranks; rank++ {
		l, err := mesh.NewLocalFromBlock(m, 2, 2, 2, rank)
		if err != nil {
			log.Fatal(err)
		}
		ownedIDs[rank] = l.VertGlobal[:l.NumOwned]
	}
	blobs := make([]bytes.Buffer, ranks)
	crashCfg := cfg
	crashCfg.Steps = crashAfter
	if err := newWorld().Run(func(r *mp.Rank) error {
		c := crashCfg
		c.Checkpoint = func(st rd.State) error {
			blobs[r.ID()].Reset()
			// In production this writes one h5lite file per rank on shared
			// or node-local storage; here an in-memory buffer stands in.
			return checkpoint.WriteRD(&blobs[r.ID()], st, r.ID(), ranks, ownedIDs[r.ID()])
		}
		_, err := rd.Run(r, c)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash! %d per-rank checkpoint containers survive (%d bytes on rank 0)\n",
		ranks, blobs[0].Len())

	// Restore on a fresh fleet and finish the run.
	resumed := make([][]float64, ranks)
	if err := newWorld().Run(func(r *mp.Rank) error {
		st, rank, nranks, _, err := checkpoint.ReadRD(bytes.NewReader(blobs[r.ID()].Bytes()))
		if err != nil {
			return err
		}
		if rank != r.ID() || nranks != ranks {
			return fmt.Errorf("checkpoint mismatch: rank %d/%d", rank, nranks)
		}
		c := cfg
		c.Resume = &st
		res, err := rd.Run(r, c)
		if err != nil {
			return err
		}
		resumed[r.ID()] = res.Solution
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Bit-exact comparison against the uninterrupted run.
	for rank := range reference {
		for i := range reference[rank] {
			if reference[rank][i] != resumed[rank][i] {
				log.Fatalf("rank %d dof %d differs after restart", rank, i)
			}
		}
	}
	fmt.Println("restored, finished, and verified: the resumed run matches the")
	fmt.Println("uninterrupted run bit for bit.")
}
