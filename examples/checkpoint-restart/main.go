// Checkpoint-restart: demonstrate the fault-tolerance conditioning the
// paper names for EC2 clusters (§VI-D: "services such as monitoring or
// automatic checkpointing"). A node crash is injected mid-run through
// internal/fault; every rank observes a typed ErrRankDead instead of
// deadlocking, and the supervisor classifies the failure, backs off,
// restores the per-rank h5lite checkpoint containers and finishes the run —
// converging to exactly the solution of an uninterrupted run.
package main

import (
	"fmt"
	"log"

	"heterohpc/internal/bench"
)

func main() {
	fmt.Println("running 8-rank RD with per-step checkpointing; a node crash is")
	fmt.Println("injected mid-run and the supervisor recovers from the last container...")
	fmt.Println()

	rep, err := bench.RunSupervised(bench.FaultOptions{
		App: "rd", Platform: "ec2", Ranks: 8,
		PerRankN: 8, Steps: 6,
		Seed:    2012,
		Crashes: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatRecovery(rep))
	fmt.Println()

	clean, recovered := rep.Clean.Metrics["max_err"], rep.Final.Metrics["max_err"]
	if clean != recovered {
		log.Fatalf("recovered solution drifted: max_err %v vs clean %v", recovered, clean)
	}
	fmt.Printf("verified: the recovered solution matches the uninterrupted run exactly\n")
	fmt.Printf("(max_err %.3e on both), despite %d attempt(s) and %.1fs of recovery overhead.\n",
		recovered, rep.Attempts, rep.WastedVirtualS)
}
