// Visualization: cover step (iv) of the paper's program organisation —
// solve both test cases on 8 ranks, gather the distributed solutions, and
// write ParaView-ready legacy VTK files: the reaction–diffusion field whose
// isosurfaces the paper's Figure 1 displays, and the Ethier–Steinman
// velocity vector field with pressure isosurfaces of Figure 2.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/nse"
	"heterohpc/internal/platform"
	"heterohpc/internal/rd"
	"heterohpc/internal/vtkio"
)

func main() {
	writeFigure1()
	writeFigure2()
}

func newWorld(ranks int) (*mp.World, error) {
	p, err := platform.Get("puma")
	if err != nil {
		return nil, err
	}
	topo, err := mp.BlockTopology(ranks, p.CoresPerNode())
	if err != nil {
		return nil, err
	}
	fab, err := netmodel.NewFabric(p.Net, topo.NNodes())
	if err != nil {
		return nil, err
	}
	return mp.NewWorld(topo, fab, p.Rater)
}

func writeFigure1() {
	const ranks, perRank = 8, 8
	m := mesh.NewUnitCube(2 * perRank) // 2³ ranks × 8³ elements

	world, err := newWorld(ranks)
	if err != nil {
		log.Fatal(err)
	}

	ownedIDs := make([][]int, ranks)
	ownedVals := make([][]float64, ranks)
	var finalTime float64
	err = world.Run(func(r *mp.Rank) error {
		res, err := rd.Run(r, rd.Config{Mesh: m, Grid: [3]int{2, 2, 2}, Steps: 4})
		if err != nil {
			return err
		}
		ownedIDs[r.ID()] = res.OwnedIDs
		ownedVals[r.ID()] = res.Solution
		if r.ID() == 0 {
			finalTime = res.FinalTime
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	u, err := vtkio.FromOwned(m, ownedIDs, ownedVals)
	if err != nil {
		log.Fatal(err)
	}
	exact := make([]float64, m.NumVerts())
	errField := make([]float64, m.NumVerts())
	var maxErr float64
	for v := range exact {
		x, y, z := m.VertexCoord(v)
		exact[v] = rd.Exact(x, y, z, finalTime)
		errField[v] = u[v] - exact[v]
		if e := math.Abs(errField[v]); e > maxErr {
			maxErr = e
		}
	}

	f, err := os.Create("rd_solution.vtk")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	title := fmt.Sprintf("RD solution at t=%.3f (paper Fig. 1 field)", finalTime)
	err = vtkio.Write(f, m, title, []vtkio.Field{
		{Name: "u", Values: u},
		{Name: "u_exact", Values: exact},
		{Name: "error", Values: errField},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote rd_solution.vtk: %d vertices at t=%.3f, max |error| = %.2e\n",
		m.NumVerts(), finalTime, maxErr)
	fmt.Println("open it in ParaView and plot isosurfaces of u to reproduce Figure 1.")
}

func writeFigure2() {
	const ranks = 8
	m, err := mesh.NewBox(mesh.SymmetricBox, 12, 12, 12)
	if err != nil {
		log.Fatal(err)
	}
	world, err := newWorld(ranks)
	if err != nil {
		log.Fatal(err)
	}
	ownedIDs := make([][]int, ranks)
	var vel [3][][]float64
	pres := make([][]float64, ranks)
	for d := 0; d < 3; d++ {
		vel[d] = make([][]float64, ranks)
	}
	var finalTime float64
	err = world.Run(func(r *mp.Rank) error {
		res, err := nse.Run(r, nse.Config{Mesh: m, Grid: [3]int{2, 2, 2}, Steps: 2})
		if err != nil {
			return err
		}
		ownedIDs[r.ID()] = res.OwnedIDs
		for d := 0; d < 3; d++ {
			vel[d][r.ID()] = res.Velocity[d]
		}
		pres[r.ID()] = res.Pressure
		if r.ID() == 0 {
			finalTime = res.FinalTime
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	var u [3][]float64
	for d := 0; d < 3; d++ {
		u[d], err = vtkio.FromOwned(m, ownedIDs, vel[d])
		if err != nil {
			log.Fatal(err)
		}
	}
	p, err := vtkio.FromOwned(m, ownedIDs, pres)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("ns_solution.vtk")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	title := fmt.Sprintf("Ethier-Steinman flow at t=%.4f (paper Fig. 2 fields)", finalTime)
	err = vtkio.Write(f, m, title, []vtkio.Field{
		{Name: "velocity", Vector: u},
		{Name: "pressure", Values: p},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote ns_solution.vtk: velocity arrows + pressure isosurfaces at t=%.4f\n", finalTime)
	fmt.Println("open it in ParaView (Glyph filter on velocity) to reproduce Figure 2.")
}
