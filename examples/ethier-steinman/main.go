// Ethier–Steinman: run the paper's second test case — the incompressible
// Navier–Stokes equations with the exact fully-3D Ethier–Steinman solution
// — on the EC2 cc2.8xlarge model, reporting accuracy against the exact
// velocity and pressure fields and the heavier per-iteration profile that
// distinguishes Figure 5 from Figure 4.
package main

import (
	"fmt"
	"log"

	"heterohpc"
)

func main() {
	target, err := heterohpc.NewTarget("ec2", 1)
	if err != nil {
		log.Fatal(err)
	}

	// 8 ranks × 6³ elements on [-1,1]³, 3 BDF2 steps of the projection
	// solver: per step, three BiCGStab velocity solves plus one CG pressure
	// Poisson solve.
	app, err := heterohpc.WeakNS(8, 6, 3)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := target.Run(heterohpc.JobSpec{Ranks: 8, App: app, SkipSteps: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("platform       : %s (%d ranks on %d × cc2.8xlarge)\n",
		rep.Platform, rep.Ranks, rep.Nodes)
	fmt.Printf("assembly       : %.4f s/iter (velocity operator reassembled each step)\n",
		rep.Iter.AvgAssembly)
	fmt.Printf("preconditioner : %.4f s/iter (ILU(0) refactorisation)\n", rep.Iter.AvgPrecond)
	fmt.Printf("solve          : %.4f s/iter (3 × BiCGStab + CG, avg %.0f + %.0f iters)\n",
		rep.Iter.AvgSolve, rep.Metrics["avg_vel_iters"], rep.Metrics["avg_pres_iters"])
	fmt.Printf("max iteration  : %.4f s (communication share %.1f%%)\n",
		rep.Iter.MaxTotal, rep.Iter.CommFraction*100)
	fmt.Printf("cost           : $%.6f on-demand, $%.6f at spot, per iteration\n",
		rep.CostPerIter, rep.SpotCostPerIter)
	fmt.Printf("velocity error : max %.3e, L2 %.3e\n",
		rep.Metrics["vel_max_err"], rep.Metrics["vel_l2_err"])
	fmt.Printf("pressure error : L2 %.3e\n", rep.Metrics["pres_l2_err"])

	if rep.Metrics["vel_l2_err"] > 0.2 {
		log.Fatal("velocity verification failed")
	}
	fmt.Println("OK: flow matches the Ethier–Steinman exact solution to discretisation accuracy.")
}
