// Spot-market: walk through the paper's cost-aware EC2 strategy (§VII-B,
// Table II). Acquire a 63-instance fleet twice — fully-paid instances in a
// single placement group, and spot requests across four placement groups
// topped up with on-demand hosts — then run the reaction–diffusion workload
// on both assemblies and compare time and money.
package main

import (
	"fmt"
	"log"

	"heterohpc"
	"heterohpc/internal/core"
	"heterohpc/internal/spot"
)

func main() {
	const ranks = 1000 // 63 × 16-core cc2.8xlarge
	target, err := heterohpc.NewTarget("ec2", 2012)
	if err != nil {
		log.Fatal(err)
	}
	nodes := target.Platform.NodesFor(ranks)
	market := spot.NewMarket(2012, target.Platform.CostPerNodeHour)

	fmt.Printf("Acquiring %d cc2.8xlarge instances two ways:\n\n", nodes)

	full, err := market.AcquireOnDemand(nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full : %d on-demand instances, 1 placement group, $%.2f/instance-hour\n",
		len(full.Nodes), full.BlendedNodeHour())

	mix, err := market.AcquireMix(nodes, target.Platform.CostPerNodeHour/2, 4, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mix  : %d spot + %d on-demand across %d groups (%d market rounds), blended $%.2f/instance-hour\n",
		mix.SpotCount(), mix.OnDemandCount(), mix.Groups, mix.Rounds, mix.BlendedNodeHour())
	if mix.SpotCount() < nodes {
		fmt.Printf("       (as in the study: the spot market never filled all %d hosts —\n", nodes)
		fmt.Println("        regularly-priced hosts were added to reach the configuration)")
	}

	// Run a reduced version of the 1000-process RD workload on both fleets.
	fmt.Println("\nRunning the RD workload on both assemblies (reduced mesh, 4³/rank)...")
	run := func(groups []int) *heterohpc.Report {
		app, err := core.WeakRD(ranks, 4, 2)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := target.Run(heterohpc.JobSpec{
			Ranks: ranks, App: app, SkipSteps: 1, GroupOfNode: groups,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	repFull := run(nil)
	repMix := run(mix.GroupOfNode())

	fullCost := target.Billing.PerIteration(repFull.Iter.MaxTotal, ranks)
	mixEst := spot.EstimateSpotCost(repMix.Iter.MaxTotal, nodes, target.Platform.SpotPerNodeHour)
	fmt.Printf("full : %7.3f s/iter, $%.4f/iter (real, on-demand)\n", repFull.Iter.MaxTotal, fullCost)
	fmt.Printf("mix  : %7.3f s/iter, $%.4f/iter (estimated at the spot price)\n", repMix.Iter.MaxTotal, mixEst)
	fmt.Printf("\nplacement-group speedup: %.1f%% — ", (repMix.Iter.MaxTotal/repFull.Iter.MaxTotal-1)*100)
	fmt.Println("the single group buys essentially nothing,")
	fmt.Printf("while costing %.1f× as much — the paper's Table II finding.\n", fullCost/mixEst)
}
