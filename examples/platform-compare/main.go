// Platform-compare: submit the same 64-process reaction–diffusion job to
// all four platform models and compare what the paper calls the secondary
// attributes — time to completion, dollar cost, queue wait, and whether the
// platform can run the job at all. This is the paper's core exercise in
// miniature: "each of the platforms had its particular benefits and
// drawbacks".
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"heterohpc"
	"heterohpc/internal/cost"
)

func main() {
	const ranks = 64
	var ledger cost.Ledger
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "platform\tnodes\tqueue wait\titer time\tcomm%\t$/iter\tverdict")
	for _, name := range []string{"puma", "ellipse", "lagrange", "ec2"} {
		target, err := heterohpc.NewTarget(name, 42)
		if err != nil {
			log.Fatal(err)
		}
		app, err := heterohpc.WeakRD(ranks, 8, 3)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := target.Run(heterohpc.JobSpec{Ranks: ranks, App: app, SkipSteps: 1})
		if err != nil {
			fmt.Fprintf(w, "%s\t-\t-\t-\t-\t-\tcannot run: %v\n", name, err)
			continue
		}
		verdict := "ok"
		if rep.Metrics["max_err"] > 1e-4 {
			verdict = "WRONG ANSWER"
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%.3f s\t%.0f%%\t$%.5f\t%s\n",
			name, rep.Nodes, fmtDur(rep.QueueWaitS), rep.Iter.MaxTotal,
			rep.Iter.CommFraction*100, rep.CostPerIter, verdict)
		steps := float64(rep.Iter.Steps)
		ledger.Add(cost.LedgerEntry{
			Platform: name, App: rep.App, Ranks: rep.Ranks, Nodes: rep.Nodes,
			RunSeconds:  rep.Iter.MaxTotal * steps,
			WaitSeconds: rep.QueueWaitS,
			Dollars:     rep.CostPerIter * steps,
		})
	}
	w.Flush()

	fmt.Println("\nExpense-factor ledger (delivered compute vs. dollars vs. waiting):")
	fmt.Print(ledger.Report())

	fmt.Println("\nAnd the paper's 1000-core question — who can even run it?")
	for _, name := range []string{"puma", "ellipse", "lagrange", "ec2"} {
		target, _ := heterohpc.NewTarget(name, 42)
		app, err := heterohpc.WeakRD(1000, 4, 1)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := target.Run(heterohpc.JobSpec{Ranks: 1000, App: app}); err != nil {
			fmt.Printf("  %-9s: %v\n", name, err)
		} else {
			fmt.Printf("  %-9s: runs the 1000-core task\n", name)
		}
	}
}

func fmtDur(seconds float64) string {
	switch {
	case seconds < 120:
		return fmt.Sprintf("%.0f s", seconds)
	case seconds < 7200:
		return fmt.Sprintf("%.0f min", seconds/60)
	default:
		return fmt.Sprintf("%.1f h", seconds/3600)
	}
}
